"""Tests for the reprolint dataflow engine and the RPL1xx rule family.

The acceptance contract pinned here: every RPL1xx rule fires on its
fixture, RPL102 accepts all existing ledger call sites while rejecting a
pop skipped on an exception path (path-sensitivity, not grep), the
engine lints itself clean, and the tests/benchmarks profile baseline is
zero.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import PROFILES, lint_file, lint_paths, lint_source, to_sarif
from repro.analysis.cfg import build_cfg, iter_function_cfgs
from repro.analysis.dataflow import OriginKind, build_scopes, resolve_expr
from repro.analysis.symbols import ProjectSymbolTable

FIXTURES = Path(__file__).parent / "fixtures" / "reprolint"
REPO = Path(__file__).parent.parent
SRC = REPO / "src"


def codes(violations):
    return [v.code for v in violations]


# ----------------------------------------------------------------------
# Analysis core
# ----------------------------------------------------------------------
class TestCFG:
    def test_try_finally_covers_exception_paths(self):
        import ast

        tree = ast.parse(
            "def f(m):\n"
            "    before()\n"
            "    try:\n"
            "        return m.work()\n"
            "    finally:\n"
            "        after()\n"
        )
        fn = next(fc for fc in iter_function_cfgs(tree) if fc.name == "f")
        # The finally suite is duplicated per continuation: its statement
        # appears on both the return path and the exception path.
        finally_nodes = [
            n for n in fn.cfg.statement_nodes() if n.line == 6
        ]
        assert len(finally_nodes) >= 2

    def test_postdominators_straight_line(self):
        import ast

        tree = ast.parse("a()\nb()\nc()\n")
        cfg = build_cfg(tree.body)
        postdom = cfg.postdominators()
        nodes = {n.line: n.index for n in cfg.statement_nodes()}
        # c() post-dominates a() and b(); b() does not post-dominate c().
        assert nodes[3] in postdom[nodes[1]]
        assert nodes[3] in postdom[nodes[2]]
        assert nodes[2] not in postdom[nodes[3]]

    def test_postdominators_branch(self):
        import ast

        tree = ast.parse(
            "if cond():\n    a()\nelse:\n    b()\njoin()\n"
        )
        cfg = build_cfg(tree.body)
        postdom = cfg.postdominators()
        nodes = {n.line: n.index for n in cfg.statement_nodes()}
        # The join post-dominates both branches; neither branch
        # post-dominates the test.
        assert nodes[5] in postdom[nodes[2]]
        assert nodes[5] in postdom[nodes[4]]
        assert nodes[2] not in postdom[nodes[1]]


class TestDataflow:
    def _scope_and_tree(self, source):
        import ast

        tree = ast.parse(source)
        return tree, build_scopes(tree)

    def test_lambda_origin(self):
        tree, scopes = self._scope_and_tree("def f():\n    g = lambda: 1\n    use(g)\n")
        fn = tree.body[0]
        call = fn.body[1].value
        origins = resolve_expr(call.args[0], scopes.scope_of(fn), None)
        assert {o.kind for o in origins} == {OriginKind.LAMBDA}

    def test_param_origin(self):
        tree, scopes = self._scope_and_tree("def f(seed):\n    use(seed)\n")
        fn = tree.body[0]
        call = fn.body[0].value
        origins = resolve_expr(call.args[0], scopes.scope_of(fn), None)
        assert {o.kind for o in origins} == {OriginKind.PARAM}

    def test_unknown_never_guessed(self):
        tree, scopes = self._scope_and_tree("def f(x):\n    y = mystery(x)\n    use(y)\n")
        fn = tree.body[0]
        call = fn.body[1].value
        origins = resolve_expr(call.args[0], scopes.scope_of(fn), None)
        assert {o.kind for o in origins} == {OriginKind.UNKNOWN}

    def test_symbol_table_resolves_reexport(self):
        table = ProjectSymbolTable()
        table.add_source(
            "src/repro/parallel/pool.py",
            "class ShardSupervisor:\n    pass\n",
        )
        table.add_source(
            "src/repro/parallel/__init__.py",
            "from repro.parallel.pool import ShardSupervisor\n",
        )
        symbol = table.resolve_import("repro.parallel", "ShardSupervisor")
        assert symbol.module == "repro.parallel.pool"
        assert symbol.is_module_level_callable

    def test_module_level_lambda_not_pickle_safe(self):
        table = ProjectSymbolTable()
        table.add_source("src/repro/util.py", "helper = lambda x: x\n")
        symbol = table.resolve_import("repro.util", "helper")
        assert not symbol.is_module_level_callable


# ----------------------------------------------------------------------
# Per-rule fixtures
# ----------------------------------------------------------------------
class TestRPL101:
    def test_fixture_trips(self):
        vs = lint_file(FIXTURES / "rpl101_pickle_safety.py", select=["RPL101"])
        assert codes(vs) == ["RPL101"] * 3
        messages = " ".join(v.message for v in vs)
        assert "lambda" in messages
        assert "local_task" in messages
        assert "LocalDriver" in messages

    def test_module_level_clean(self):
        # The negative case lives in the same fixture: no finding lands in
        # ship_module_level.
        src = (FIXTURES / "rpl101_pickle_safety.py").read_text()
        good_start = src.splitlines().index("def ship_module_level(pool: ProcessPoolExecutor):")
        vs = lint_file(FIXTURES / "rpl101_pickle_safety.py", select=["RPL101"])
        assert all(v.line <= good_start for v in vs)

    def test_supervisor_task_list(self):
        src = (
            "from repro.parallel import ShardSupervisor\n"
            "def run():\n"
            "    make = lambda: None\n"
            "    return ShardSupervisor([make], n_jobs=2)\n"
        )
        vs = lint_source(src, "x.py", select=["RPL101"])
        assert codes(vs) == ["RPL101"]

    def test_supervisor_callbacks_stay_local(self):
        # Keyword callbacks run in the parent process and never pickle.
        src = (
            "from repro.parallel import ShardSupervisor\n"
            "def run(tasks):\n"
            "    def on_result(r):\n"
            "        return r\n"
            "    return ShardSupervisor(tasks, on_result=on_result)\n"
        )
        assert lint_source(src, "x.py", select=["RPL101"]) == []


class TestRPL102:
    def test_rejects_pop_skipped_on_exception_path(self):
        """The acceptance case: path-sensitivity, not grep.

        ``leaks_on_exception`` pushes, calls, pops — the pop exists and
        runs on the normal path, so any token-level matcher calls it
        balanced. Only following the exception edge out of the distance
        call proves the leak.
        """
        vs = lint_file(FIXTURES / "rpl102_span_discipline.py", select=["RPL102"])
        leak = [v for v in vs if "leaks_on_exception" in v.message]
        assert len(leak) == 1
        assert "exception path" in leak[0].message

    def test_unmatched_pop_flagged(self):
        vs = lint_file(FIXTURES / "rpl102_span_discipline.py", select=["RPL102"])
        pops = [v for v in vs if "unmatched_pop" in v.message]
        assert len(pops) == 1

    def test_paired_forms_accepted(self):
        vs = lint_file(FIXTURES / "rpl102_span_discipline.py", select=["RPL102"])
        assert all(
            "paired" not in v.message for v in vs
        ), [v.message for v in vs]

    @pytest.mark.parametrize(
        "module",
        [
            "core/bubble.py",
            "core/bubble_fm.py",
            "core/features.py",
            "core/routing.py",
            "core/threshold.py",
            "metrics/base.py",
            "observability/tracer.py",
        ],
    )
    def test_accepts_existing_ledger_sites(self, module):
        path = SRC / "repro" / module
        if not path.exists():
            pytest.skip(f"{module} not present")
        assert lint_file(path, select=["RPL102"]) == []


class TestRPL103:
    def test_fixture_trips(self):
        vs = lint_file(FIXTURES / "rpl103_seed_provenance.py", select=["RPL103"])
        assert codes(vs) == ["RPL103"] * 4
        messages = [v.message for v in vs]
        assert any("literal seed" in m for m in messages)
        assert any("wall clock" in m for m in messages)
        assert any("without a seed" in m for m in messages)
        assert any("default_rng(None)" in m for m in messages)

    def test_param_and_seedsequence_clean(self):
        src = (FIXTURES / "rpl103_seed_provenance.py").read_text()
        good_start = src.splitlines().index("def param_seed(seed):")
        vs = lint_file(FIXTURES / "rpl103_seed_provenance.py", select=["RPL103"])
        assert all(v.line <= good_start for v in vs)

    def test_ensure_rng_with_param_clean(self):
        src = (
            "from repro.utils.rng import ensure_rng\n"
            "def f(seed):\n"
            "    return ensure_rng(seed)\n"
        )
        assert lint_source(src, "src/repro/x.py", select=["RPL103"]) == []


class TestRPL104:
    def test_fixture_trips_outside_accounting_layer(self):
        vs = lint_file(FIXTURES / "rpl104_count_booking.py", select=["RPL104"])
        assert codes(vs) == ["RPL104"] * 2
        assert all("accounting layer" in v.message for v in vs)

    def test_conditional_residual_flagged_in_allowlisted_module(self):
        src = (
            "def absorb(metric, result):\n"
            "    attributed = 0\n"
            "    for site, n in result.by_site.items():\n"
            "        metric.count_external(n, site=site)\n"
            "        attributed += n\n"
            "    if result.n_calls > attributed:\n"
            "        metric.count_external(result.n_calls - attributed)\n"
        )
        vs = lint_source(src, "src/repro/parallel/build.py", select=["RPL104"])
        assert codes(vs) == ["RPL104"]
        assert "post-dominated" in vs[0].message

    def test_unconditional_residual_clean(self):
        src = (
            "def absorb(metric, result):\n"
            "    attributed = 0\n"
            "    for site, n in result.by_site.items():\n"
            "        metric.count_external(n, site=site)\n"
            "        attributed += n\n"
            "    metric.count_external(result.n_calls - attributed)\n"
        )
        assert lint_source(src, "src/repro/parallel/build.py", select=["RPL104"]) == []


class TestRPL105:
    def _lint_fixture_as(self, path):
        src = (FIXTURES / "rpl105_float_stability.py").read_text()
        return lint_source(src, path, select=["RPL105"])

    def test_fixture_trips_in_numerics_scope(self):
        vs = self._lint_fixture_as("src/repro/birch/fixture.py")
        assert codes(vs) == ["RPL105"] * 3

    def test_stable_form_clean(self):
        src = (FIXTURES / "rpl105_float_stability.py").read_text()
        good_start = src.splitlines().index("def stable_radius(vectors, centroid):")
        vs = self._lint_fixture_as("src/repro/birch/fixture.py")
        assert all(v.line <= good_start for v in vs)

    def test_out_of_scope_path_exempt(self):
        assert self._lint_fixture_as("src/repro/evaluation/fixture.py") == []


class TestRPL000:
    def test_fixture_trips(self):
        vs = lint_file(FIXTURES / "rpl000_unused_suppression.py")
        assert codes(vs) == ["RPL000"] * 3
        messages = [v.message for v in vs]
        assert any("unused suppression" in m for m in messages)
        assert any("without a justification" in m for m in messages)
        assert any("unknown rule code" in m for m in messages)

    def test_unused_detection_respects_select(self):
        # A --select run that never executed RPL001 must not declare its
        # suppressions stale; reason/unknown-code checks still apply.
        vs = lint_file(FIXTURES / "rpl000_unused_suppression.py", select=["RPL000"])
        messages = [v.message for v in vs]
        assert not any("unused suppression" in m for m in messages)
        assert any("without a justification" in m for m in messages)
        assert any("unknown rule code" in m for m in messages)

    def test_meta_findings_not_suppressible(self):
        src = "x = 1  # reprolint: disable=RPL001,RPL000 -- trying to hide\n"
        vs = lint_source(src, "pkg/mod.py", select=["RPL000", "RPL001"])
        assert codes(vs) == ["RPL000"]
        assert "unused suppression" in vs[0].message


# ----------------------------------------------------------------------
# Profiles, baselines, SARIF
# ----------------------------------------------------------------------
class TestProfiles:
    def test_profiles_catalogue(self):
        assert PROFILES["src"] is None
        assert set(PROFILES["tests"]) == {"RPL000", "RPL101", "RPL102"}

    def test_tests_profile_drops_style_rules(self):
        # No __all__, nested distance loops: clean under the tests profile,
        # violations under the src profile.
        src = (
            "def scan(metric, objects):\n"
            "    out = []\n"
            "    for a in objects:\n"
            "        for b in objects:\n"
            "            out.append(metric.distance(a, b))\n"
            "    return out\n"
        )
        assert lint_source(src, "tests/test_x.py", profile="tests") == []
        full = codes(lint_source(src, "pkg/mod.py", profile="src"))
        assert "RPL004" in full and "RPL005" in full

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError, match="unknown profile"):
            lint_source("x = 1\n", profile="nope")

    def test_tests_and_benchmarks_baseline_is_zero(self):
        """The relaxed-profile baseline CI enforces over tests/benchmarks."""
        from repro.analysis.lint import format_violations

        violations = lint_paths(
            [REPO / "tests", REPO / "benchmarks"],
            profile="tests",
            exclude=["tests/fixtures"],
        )
        assert violations == [], format_violations(violations)

    def test_exclude_filters_paths(self):
        vs = lint_paths([FIXTURES], select=["RPL101"], exclude=["fixtures"])
        assert vs == []


class TestSelfLint:
    def test_engine_lints_itself_clean(self):
        """The analysis package passes every one of its own rules."""
        from repro.analysis.lint import format_violations

        violations = lint_paths([SRC / "repro" / "analysis"])
        assert violations == [], format_violations(violations)


class TestSarif:
    def test_sarif_shape(self):
        vs = lint_file(FIXTURES / "rpl101_pickle_safety.py", select=["RPL101"])
        log = to_sarif(vs)
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"RPL000", "RPL101", "RPL105"} <= rule_ids
        assert len(run["results"]) == len(vs)
        first = run["results"][0]
        assert first["ruleId"] == "RPL101"
        region = first["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == vs[0].line
        assert region["startColumn"] == vs[0].col + 1

    def test_sarif_cli_output(self, tmp_path):
        from repro.analysis.lint import main

        out = tmp_path / "report.sarif"
        code = main(
            [
                str(FIXTURES / "rpl103_seed_provenance.py"),
                "--select", "RPL103",
                "--format", "sarif",
                "--output", str(out),
            ]
        )
        assert code == 1  # findings exist; the report still lands on disk
        import json

        payload = json.loads(out.read_text())
        assert payload["runs"][0]["results"]
