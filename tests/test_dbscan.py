"""Unit tests for metric-space DBSCAN over the M-tree."""

import numpy as np
import pytest

from repro.dbscan import NOISE, MetricDBSCAN
from repro.exceptions import EmptyDatasetError, NotFittedError, ParameterError
from repro.metrics import EditDistance, EuclideanDistance


class TestValidation:
    def test_params(self):
        m = EuclideanDistance()
        with pytest.raises(ParameterError):
            MetricDBSCAN(eps=0, min_pts=3, metric=m)
        with pytest.raises(ParameterError):
            MetricDBSCAN(eps=1.0, min_pts=0, metric=m)
        with pytest.raises(ParameterError):
            MetricDBSCAN(eps=1.0, min_pts=3, metric="euclid")

    def test_empty(self):
        with pytest.raises(EmptyDatasetError):
            MetricDBSCAN(1.0, 3, EuclideanDistance()).fit([])

    def test_not_fitted(self):
        model = MetricDBSCAN(1.0, 3, EuclideanDistance())
        with pytest.raises(NotFittedError):
            _ = model.n_clusters_


class TestBasicClustering:
    def test_two_blobs_and_noise(self, rng):
        pts = list(np.array([0.0, 0.0]) + 0.2 * rng.normal(size=(50, 2)))
        pts += list(np.array([10.0, 10.0]) + 0.2 * rng.normal(size=(50, 2)))
        pts.append(np.array([5.0, 5.0]))  # isolated noise
        model = MetricDBSCAN(eps=0.5, min_pts=4, metric=EuclideanDistance()).fit(pts)
        assert model.n_clusters_ == 2
        assert model.labels_[-1] == NOISE
        # All members of each blob share a label.
        assert len(set(model.labels_[:50].tolist())) == 1
        assert len(set(model.labels_[50:100].tolist())) == 1
        assert model.labels_[0] != model.labels_[50]

    def test_all_noise(self, rng):
        pts = [np.array([float(i * 100), 0.0]) for i in range(10)]
        model = MetricDBSCAN(eps=1.0, min_pts=3, metric=EuclideanDistance()).fit(pts)
        assert model.n_clusters_ == 0
        assert model.n_noise_ == 10

    def test_single_dense_cluster(self, rng):
        pts = list(0.1 * rng.normal(size=(40, 2)))
        model = MetricDBSCAN(eps=0.5, min_pts=3, metric=EuclideanDistance()).fit(pts)
        assert model.n_clusters_ == 1
        assert model.n_noise_ == 0

    def test_min_pts_one_every_object_core(self):
        pts = [np.array([float(i * 10), 0.0]) for i in range(5)]
        model = MetricDBSCAN(eps=1.0, min_pts=1, metric=EuclideanDistance()).fit(pts)
        assert model.n_clusters_ == 5
        assert bool(model.core_mask_.all())


class TestArbitraryShapes:
    def test_elongated_chain_found_as_one_cluster(self):
        """The density-based advantage: a chain is one cluster for DBSCAN
        even though no single center covers it."""
        pts = [np.array([0.1 * i, 0.0]) for i in range(200)]  # a long line
        pts += [np.array([10.0, 8.0]), np.array([-5.0, 8.0])]  # two noise pts
        model = MetricDBSCAN(eps=0.25, min_pts=3, metric=EuclideanDistance()).fit(pts)
        assert model.n_clusters_ == 1
        assert model.n_noise_ == 2

    def test_two_concentric_rings(self, rng):
        angles = np.linspace(0, 2 * np.pi, 150, endpoint=False)
        inner = np.column_stack([np.cos(angles), np.sin(angles)])
        outer = 4.0 * np.column_stack([np.cos(angles), np.sin(angles)])
        pts = list(inner) + list(outer)
        model = MetricDBSCAN(eps=0.5, min_pts=3, metric=EuclideanDistance()).fit(pts)
        assert model.n_clusters_ == 2
        assert model.labels_[0] != model.labels_[150]


class TestDistanceSpace:
    def test_clusters_strings(self):
        words = (["cat", "cats", "bat", "rat", "mat"] * 3
                 + ["clustering", "clustering!", "clusterings"] * 3
                 + ["zzzzzzz"])
        model = MetricDBSCAN(eps=1.0, min_pts=3, metric=EditDistance()).fit(words)
        assert model.n_clusters_ == 2
        assert model.labels_[-1] == NOISE

    def test_core_mask_shape(self, blob_data):
        points, _, _ = blob_data
        model = MetricDBSCAN(eps=1.0, min_pts=4, metric=EuclideanDistance()).fit(points)
        assert model.core_mask_.shape == (len(points),)
        # Core objects are a subset of clustered objects.
        assert np.all(model.labels_[model.core_mask_] != NOISE)


class TestAgainstBruteForce:
    def test_matches_naive_dbscan(self, rng):
        """Cross-check labels against a brute-force O(n^2) implementation."""
        pts = list(rng.uniform(0, 10, size=(120, 2)))
        eps, min_pts = 1.2, 4
        model = MetricDBSCAN(eps, min_pts, EuclideanDistance()).fit(pts)

        # Brute force.
        arr = np.asarray(pts)
        d2 = ((arr[:, None, :] - arr[None, :, :]) ** 2).sum(axis=2)
        neighbours = [set(np.flatnonzero(d2[i] <= eps**2)) for i in range(len(pts))]
        core = {i for i, nb in enumerate(neighbours) if len(nb) >= min_pts}
        # Connected components of core objects.
        seen, comps = set(), []
        for i in core:
            if i in seen:
                continue
            comp, stack = set(), [i]
            while stack:
                j = stack.pop()
                if j in comp:
                    continue
                comp.add(j)
                stack.extend(k for k in neighbours[j] if k in core and k not in comp)
            seen |= comp
            comps.append(comp)
        # The partition of CORE objects is implementation-independent.
        got = {}
        for comp in comps:
            labels = {int(model.labels_[i]) for i in comp}
            assert len(labels) == 1, "core component split across clusters"
            label = labels.pop()
            assert label not in got, "two core components share a label"
            got[label] = comp
        assert set(np.flatnonzero(model.core_mask_)) == core
