"""Self-tests for the reprolint static analyzer.

Each rule has a fixture snippet under ``tests/fixtures/reprolint/`` that
trips it; these tests pin the expected findings (and non-findings) so the
rules cannot silently rot.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import ALL_RULES, lint_file, lint_paths, lint_source
from repro.analysis.lint import format_violations, main

FIXTURES = Path(__file__).parent / "fixtures" / "reprolint"
SRC = Path(__file__).parent.parent / "src"


def codes(violations):
    return [v.code for v in violations]


# ----------------------------------------------------------------------
# Per-rule fixtures
# ----------------------------------------------------------------------
class TestRPL001:
    def test_fixture_trips(self):
        vs = lint_file(FIXTURES / "rpl001_raw_hook.py", select=["RPL001"])
        assert codes(vs) == ["RPL001", "RPL001"]
        assert [v.line for v in vs] == [7, 8]
        assert "NCD accounting" in vs[0].message

    def test_self_and_super_receivers_allowed(self):
        src = (FIXTURES / "rpl001_raw_hook.py").read_text()
        vs = lint_source(src, "x.py", select=["RPL001"])
        flagged_lines = {v.line for v in vs}
        allowed_lines = {
            i + 1
            for i, text in enumerate(src.splitlines())
            if "self._distance" in text or "super()._distance" in text
        }
        assert allowed_lines  # sanity: the fixture still exercises both forms
        assert not (flagged_lines & allowed_lines)

    def test_metrics_base_exempt(self):
        src = "def f(m, a, b):\n    return m._distance(a, b)\n"
        assert lint_source(src, "src/repro/metrics/base.py", select=["RPL001"]) == []
        assert codes(lint_source(src, "src/repro/metrics/cache.py", select=["RPL001"])) == [
            "RPL001"
        ]

    def test_routing_module_exempt(self):
        # The pruned routing engine maintains cached pivot geometry through
        # the raw hooks (NCD-neutral by documented policy) and is therefore
        # on the RPL001 allowlist alongside metrics/base.py.
        src = "def f(m, p, objs):\n    return m._one_to_many(p, objs)\n"
        assert lint_source(src, "src/repro/core/routing.py", select=["RPL001"]) == []
        assert codes(
            lint_source(src, "src/repro/core/bubble.py", select=["RPL001"])
        ) == ["RPL001"]

    def test_cross_hook_flagged(self):
        src = "def f(m, a, b):\n    return m._cross(a, b)\n"
        assert codes(lint_source(src, "x.py", select=["RPL001"])) == ["RPL001"]


class TestRPL002:
    def test_fixture_trips(self):
        vs = lint_file(FIXTURES / "rpl002_unseeded.py", select=["RPL002"])
        assert codes(vs) == ["RPL002"] * 5
        # Violations are confined to bad(); everything in good() is seeded.
        src = (FIXTURES / "rpl002_unseeded.py").read_text()
        good_start = src.splitlines().index("def good(seed):") + 1
        assert all(v.line < good_start for v in vs)

    @pytest.mark.parametrize(
        "snippet",
        [
            "import numpy as np\nnp.random.default_rng()\n",
            "from numpy.random import default_rng\ndefault_rng()\n",
            "import numpy.random as npr\nnpr.default_rng()\n",
            "import numpy as np\nnp.random.seed(0)\n",
            "import random\nrandom.randint(0, 3)\n",
            "from random import choice\nchoice([1, 2])\n",
        ],
    )
    def test_unseeded_variants_flagged(self, snippet):
        assert codes(lint_source(snippet, select=["RPL002"])) == ["RPL002"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "import numpy as np\nnp.random.default_rng(7)\n",
            "import numpy as np\nnp.random.default_rng(seed=None)\n",
            "import numpy as np\nnp.random.Generator(np.random.PCG64(3))\n",
            "import random\nrandom.Random(11)\n",
            "rng.normal(size=3)\n",  # drawing from a passed-in Generator
        ],
    )
    def test_seeded_variants_clean(self, snippet):
        assert lint_source(snippet, select=["RPL002"]) == []


class TestRPL003:
    def test_fixture_trips(self):
        vs = lint_file(FIXTURES / "rpl003_distance_eq.py", select=["RPL003"])
        assert codes(vs) == ["RPL003"] * 4
        assert all("tolerance" in v.message for v in vs)

    def test_ordering_comparisons_clean(self):
        assert lint_source("ok = d <= threshold\n", select=["RPL003"]) == []

    def test_non_distance_names_clean(self):
        assert lint_source("if count == 0:\n    pass\n", select=["RPL003"]) == []


class TestRPL004:
    def test_fixture_trips(self):
        vs = lint_file(FIXTURES / "rpl004_nested_loops.py", select=["RPL004"])
        assert codes(vs) == ["RPL004"] * 3

    def test_sanctioned_modules_exempt(self):
        src = (FIXTURES / "rpl004_nested_loops.py").read_text()
        assert lint_source(src, "src/repro/evaluation/quality.py", select=["RPL004"]) == []
        assert lint_source(src, "src/repro/experiments/scaling.py", select=["RPL004"]) == []

    def test_function_scope_resets_depth(self):
        src = (
            "def outer(m, objs):\n"
            "    for a in objs:\n"
            "        for b in objs:\n"
            "            def inner():\n"
            "                return m.distance(a, b)\n"
            "            inner()\n"
        )
        assert lint_source(src, select=["RPL004"]) == []


class TestRPL005:
    def test_fixture_trips(self):
        vs = lint_file(FIXTURES / "rpl005_no_all.py", select=["RPL005"])
        assert codes(vs) == ["RPL005"]
        assert vs[0].line == 1

    def test_private_modules_exempt(self):
        src = "def f():\n    return 1\n"
        assert lint_source(src, "src/repro/_private.py", select=["RPL005"]) == []
        assert lint_source(src, "src/repro/__main__.py", select=["RPL005"]) == []
        assert codes(lint_source(src, "src/repro/__init__.py", select=["RPL005"])) == ["RPL005"]

    def test_docstring_only_module_exempt(self):
        assert lint_source('"""Just docs."""\n', "pkg/mod.py", select=["RPL005"]) == []


# ----------------------------------------------------------------------
# Framework behavior
# ----------------------------------------------------------------------
class TestFramework:
    def test_clean_fixture_passes_all_rules(self):
        assert lint_file(FIXTURES / "clean.py") == []

    def test_suppressions(self):
        vs = lint_file(FIXTURES / "suppressed.py")
        # Only the deliberately unsuppressed hook call on line 17 survives.
        assert [(v.code, v.line) for v in vs] == [("RPL001", 17)]

    def test_file_wide_suppression(self):
        src = (
            "# reprolint: disable-file=RPL005 -- fixture, not a public module\n"
            "def f(m, a, b):\n"
            "    return m._distance(a, b)\n"
        )
        assert codes(lint_source(src, "pkg/mod.py")) == ["RPL001"]

    def test_syntax_error_reported_as_rpl000(self):
        vs = lint_source("def broken(:\n", "bad.py")
        assert codes(vs) == ["RPL000"]
        assert "syntax error" in vs[0].message

    def test_unknown_select_code_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            lint_source("x = 1\n", select=["RPL999"])

    def test_rule_catalogue_complete(self):
        assert [r.code for r in ALL_RULES] == [
            "RPL000", "RPL001", "RPL002", "RPL003", "RPL004", "RPL005",
            "RPL101", "RPL102", "RPL103", "RPL104", "RPL105",
        ]
        for rule in ALL_RULES:
            assert rule.summary and rule.rationale

    def test_format_violations_layout(self):
        vs = lint_file(FIXTURES / "rpl005_no_all.py", select=["RPL005"])
        text = format_violations(vs, statistics=True)
        assert "rpl005_no_all.py:1:1: RPL005" in text
        assert "    1  RPL005" in text

    def test_src_baseline_is_zero(self):
        """The whole library lints clean — the invariant CI enforces."""
        violations = lint_paths([SRC])
        assert violations == [], format_violations(violations)


# ----------------------------------------------------------------------
# CLI entry points
# ----------------------------------------------------------------------
class TestCLI:
    def test_exit_zero_on_clean(self, capsys):
        assert main([str(FIXTURES / "clean.py")]) == 0

    def test_exit_one_with_findings(self, capsys):
        assert main([str(FIXTURES / "rpl005_no_all.py")]) == 1
        out = capsys.readouterr()
        assert "RPL005" in out.out
        assert "violation(s) found" in out.err

    def test_json_output(self, capsys):
        assert main([str(FIXTURES / "rpl001_raw_hook.py"), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert {entry["code"] for entry in payload} == {"RPL001"}

    def test_select_filter(self, capsys):
        path = str(FIXTURES / "rpl001_raw_hook.py")
        assert main([path, "--select", "RPL002"]) == 0
        assert main([path, "--select", "RPL999"]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005"):
            assert code in out

    def test_repro_lint_verb(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["lint", str(FIXTURES / "clean.py")]) == 0
        assert repro_main(["lint", str(FIXTURES / "rpl005_no_all.py")]) == 1

    def test_python_dash_m_module(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(FIXTURES / "clean.py")],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
