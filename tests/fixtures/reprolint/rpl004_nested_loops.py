"""Fixture: trips RPL004 (distance calls >= 2 loops deep)."""

__all__ = ["bad_for_for", "bad_comprehension", "bad_while_for", "good"]


def bad_for_for(metric, objects):
    total = 0.0
    for a in objects:
        for b in objects:
            total += metric.distance(a, b)  # violation: depth 2
    return total


def bad_comprehension(metric, objects):
    # A double comprehension counts as two loop levels.
    return [metric.distance(a, b) for a in objects for b in objects]  # violation


def bad_while_for(metric, objects):
    i = 0
    while i < len(objects):
        for b in objects:
            metric.one_to_many(b, objects)  # violation: batch call still nested
        i += 1
    return i


def good(metric, objects):
    # Depth 1 is fine; new function scopes reset the loop depth.
    sums = []
    for a in objects:
        sums.append(metric.one_to_many(a, objects).sum())

    def helper(x):
        return metric.distance(x, objects[0])

    for a in objects:
        sums.append(helper(a))
    return sums
