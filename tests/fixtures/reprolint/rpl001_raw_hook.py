"""Fixture: trips RPL001 (raw distance-hook call on a non-self receiver)."""

__all__ = ["bad", "allowed_self", "allowed_super"]


def bad(metric, a, b):
    direct = metric._distance(a, b)  # line 7: violation
    batch = metric._one_to_many(a, [b])  # line 8: violation
    return direct, batch


class _FakeMetric:
    def _distance(self, a, b):
        return 0.0

    def allowed_self(self, a, b):
        # Hook-to-hook delegation on bare self is allowed.
        return self._distance(a, b)


class _Sub(_FakeMetric):
    def allowed_super(self, a, b):
        # super() receivers stay inside the hook layer: allowed.
        return super()._distance(a, b)


def allowed_self(m, a, b):
    return m.distance(a, b)


def allowed_super(m, a, b):
    return m.one_to_many(a, [b])
