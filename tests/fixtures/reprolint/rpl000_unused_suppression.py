"""Fixture: RPL000 — stale, unjustified, and unknown suppressions."""

__all__ = ["stale", "unjustified", "unknown_code", "genuinely_used"]


def stale(metric, a, b):
    # The counted public API violates nothing, so this suppression is dead.
    return metric.distance(a, b)  # reprolint: disable=RPL001 -- stale on purpose


def unjustified(metric, a, b):
    return metric._distance(a, b)  # reprolint: disable=RPL001


def unknown_code(x):
    return x  # reprolint: disable=RPL999 -- no such rule


def genuinely_used(metric, a, b):
    return metric._distance(a, b)  # reprolint: disable=RPL001 -- fixture: used and justified
