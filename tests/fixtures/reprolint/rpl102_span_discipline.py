"""Fixture: RPL102 — push_site/pop_site pairing across CFG paths.

``leaks_on_exception`` is the acceptance case: the pop is syntactically
present and runs on the straight-line path, but a raise inside the
distance call skips it — only a path-sensitive analysis can tell this
apart from ``paired``.
"""

from repro.metrics.base import pop_site, push_site

__all__ = [
    "leaks_on_exception",
    "unmatched_pop",
    "paired",
    "paired_conditional",
]


def leaks_on_exception(metric, obj, others):
    push_site("fixture")
    dists = metric.one_to_many(obj, others)  # a raise here skips the pop
    pop_site()
    return dists


def unmatched_pop(values):
    total = sum(values)
    pop_site()
    return total


def paired(metric, obj, others):
    # Negative: the finally runs on every path, normal or exceptional.
    push_site("fixture")
    try:
        return metric.one_to_many(obj, others)
    finally:
        pop_site()


def paired_conditional(metric, obj, others, attribute):
    # Negative: both branches keep the stack balanced.
    if attribute:
        push_site("fixture")
        try:
            return metric.one_to_many(obj, others)
        finally:
            pop_site()
    return metric.one_to_many(obj, others)
