"""Fixture: trips RPL003 (exact ==/!= on distance values)."""

import math

__all__ = ["bad", "good"]


def bad(metric, a, b, dists):
    d = metric.distance(a, b)
    if d == 0.0:  # violation: name `d`
        return True
    if metric.distance(a, b) != 0.0:  # violation: direct call operand
        return False
    if dists[0] == dists[1]:  # violation: subscript of a distance name
        return True
    min_dist = min(dists)
    return min_dist == 0  # violation: `_dist` suffix


def good(metric, a, b, count):
    d = metric.distance(a, b)
    if math.isclose(d, 0.0, abs_tol=1e-12):  # tolerance: fine
        return True
    if count == 0:  # non-distance name: fine
        return False
    return d <= 1e-9  # ordering comparisons: fine
