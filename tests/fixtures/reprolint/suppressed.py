"""Fixture: violations silenced by reprolint suppression comments."""

__all__ = ["suppressed_hook", "suppressed_eq", "unsuppressed"]


def suppressed_hook(metric, a, b):
    return metric._distance(a, b)  # reprolint: disable=RPL001 -- test fixture


def suppressed_eq(metric, a, b):
    d = metric.distance(a, b)
    return d == 0.0  # reprolint: disable=all -- test fixture


def unsuppressed(metric, a, b):
    # The suppression on line 7 must not leak to this line.
    return metric._distance(a, b)
