"""Fixture: trips RPL002 (unseeded / global-state randomness)."""

import random

import numpy as np
from numpy.random import default_rng

__all__ = ["bad", "good"]


def bad():
    g1 = np.random.default_rng()  # violation: no seed
    g2 = default_rng()  # violation: no seed (from-import)
    x = np.random.rand(3)  # violation: legacy global state
    y = random.random()  # violation: stdlib hidden global state
    z = random.shuffle([1, 2])  # violation
    return g1, g2, x, y, z


def good(seed):
    g1 = np.random.default_rng(seed)  # seeded: fine
    g2 = default_rng(seed=seed)  # seeded kwarg: fine
    g3 = np.random.Generator(np.random.PCG64(seed))  # explicit bit generator: fine
    r = random.Random(seed)  # seeded stdlib instance: fine
    return g1, g2, g3, r
