"""Fixture: RPL104 — external-count booking outside the accounting layer.

This file's path is *not* allowlisted, so both bookings below are
violations. The post-domination half of the rule is exercised by
``tests/test_reprolint_flow.py`` with allowlisted paths.
"""

__all__ = ["books_outside_accounting_layer"]


def books_outside_accounting_layer(metric, shard):
    for site, n in shard.by_site.items():
        metric.count_external(n, site=site)
    metric.count_external(shard.n_calls)
