"""Fixture: trips RPL005 (public module without __all__)."""


def public_function():
    return 1


CONSTANT = 2
