"""Fixture: violates no reprolint rule."""

import math

import numpy as np

__all__ = ["pairwise_sum", "seeded_noise"]


def pairwise_sum(metric, objects):
    # Single loop over a batched call: the sanctioned access pattern.
    total = 0.0
    for obj in objects:
        total += float(metric.one_to_many(obj, objects).sum())
    return total


def seeded_noise(seed, n):
    rng = np.random.default_rng(seed)
    values = rng.normal(size=n)
    return values[np.abs(values) > math.ulp(1.0)]
