"""Fixture: RPL105 — catastrophic-cancellation shapes (BETULA worklist).

The rule is scoped to the numerics modules, so the tests lint this text
under a ``src/repro/birch/...`` path.
"""

import numpy as np

__all__ = [
    "radius_sq_from_moments",
    "difference_of_squares",
    "accumulate_ss",
    "stable_radius",
]


def radius_sq_from_moments(ss, n, centroid):
    return ss / n - float(np.dot(centroid, centroid))


def difference_of_squares(a, b):
    return a * a - b * b


def accumulate_ss(state, vec):
    state.ss += float(np.dot(vec, vec))


def stable_radius(vectors, centroid):
    # Negative: the centered form squares *after* subtracting, so nothing
    # cancels.
    diffs = vectors - centroid
    return float(np.sqrt((diffs * diffs).sum(axis=1).mean()))
