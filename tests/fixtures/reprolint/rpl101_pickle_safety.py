"""Fixture: RPL101 — pickle-unsafe objects shipped to worker boundaries."""

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import Process

__all__ = [
    "ship_lambda",
    "ship_local_def",
    "ship_local_class",
    "ship_module_level",
]


def module_level_task(x):
    return x * 2


class ModuleLevelDriver:
    pass


def ship_lambda(pool: ProcessPoolExecutor):
    work = lambda x: x + 1
    return pool.submit(work, 3)


def ship_local_def(pool: ProcessPoolExecutor):
    def local_task(x):
        return x - 1

    return pool.submit(local_task, 3)


def ship_local_class():
    class LocalDriver:
        pass

    return Process(target=module_level_task, args=(LocalDriver,))


def ship_module_level(pool: ProcessPoolExecutor):
    # Negative: module-level defs pickle by qualified name and import
    # cleanly in a spawned worker.
    proc = Process(target=module_level_task, args=(ModuleLevelDriver,))
    return pool.submit(module_level_task, 3), proc
