"""Fixture: RPL103 — RNG seed provenance."""

import time

import numpy as np

__all__ = [
    "literal_seed",
    "clock_seed",
    "bare_entropy",
    "none_seed",
    "param_seed",
    "spawned_seed",
]


def literal_seed():
    return np.random.default_rng(1234)


def clock_seed():
    return np.random.default_rng(int(time.time()))


def bare_entropy():
    return np.random.default_rng()


def none_seed():
    return np.random.default_rng(None)


def param_seed(seed):
    # Negative: the seed flows in from the caller.
    return np.random.default_rng(seed)


def spawned_seed(seed):
    # Negative: derived from a SeedSequence dataflow.
    parent = np.random.SeedSequence(seed)
    child = parent.spawn(1)[0]
    return np.random.default_rng(child)
