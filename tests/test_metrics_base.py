"""Unit tests for the distance-function base layer and NCD accounting."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.metrics import FunctionDistance
from repro.metrics.base import DistanceFunction


def abs_diff(a, b):
    return abs(a - b)


class TestFunctionDistance:
    def test_wraps_callable(self):
        m = FunctionDistance(abs_diff)
        result = m.distance(3, 7)
        assert result == 4.0
        assert isinstance(result, float)  # int results are coerced

    def test_rejects_non_callable(self):
        with pytest.raises(TypeError):
            FunctionDistance(42)

    def test_name(self):
        m = FunctionDistance(abs_diff, name="absdiff")
        assert m.name == "absdiff"

    def test_call_dunder(self):
        m = FunctionDistance(abs_diff)
        assert m(1, 5) == 4
        assert m.n_calls == 1


class TestCounting:
    def test_distance_counts_one(self):
        m = FunctionDistance(abs_diff)
        m.distance(0, 1)
        m.distance(2, 3)
        assert m.n_calls == 2

    def test_one_to_many_counts_len(self):
        m = FunctionDistance(abs_diff)
        out = m.one_to_many(0, [1, 2, 3, 4])
        assert m.n_calls == 4
        np.testing.assert_allclose(out, [1, 2, 3, 4])

    def test_one_to_many_empty(self):
        m = FunctionDistance(abs_diff)
        out = m.one_to_many(0, [])
        assert out.shape == (0,)
        assert m.n_calls == 0

    def test_pairwise_counts_half_matrix(self):
        m = FunctionDistance(abs_diff)
        out = m.pairwise([0, 1, 3])
        assert m.n_calls == 3  # 3*2/2
        expected = np.array([[0, 1, 3], [1, 0, 2], [3, 2, 0]], dtype=float)
        np.testing.assert_allclose(out, expected)

    def test_reset_counter(self):
        m = FunctionDistance(abs_diff)
        m.distance(0, 1)
        m.reset_counter()
        assert m.n_calls == 0

    def test_pairwise_symmetric_zero_diagonal(self):
        m = FunctionDistance(abs_diff)
        out = m.pairwise(list(range(6)))
        np.testing.assert_allclose(out, out.T)
        np.testing.assert_allclose(np.diag(out), 0)


class TestAbstract:
    def test_cannot_instantiate_base(self):
        with pytest.raises(TypeError):
            DistanceFunction()
