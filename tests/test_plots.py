"""Unit tests for the ASCII plot renderers."""

import numpy as np
import pytest

from repro.evaluation.plots import ascii_lines, ascii_scatter
from repro.exceptions import ParameterError


class TestScatter:
    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            ascii_scatter({})

    def test_renders_all_points_within_canvas(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [0.5, 0.5]])
        out = ascii_scatter({"pts": pts}, width=20, height=10)
        lines = out.splitlines()
        body = [l for l in lines if l.startswith("|")]
        assert len(body) == 10
        assert sum(l.count("o") for l in body) >= 1

    def test_title_and_legend(self):
        out = ascii_scatter({"alpha": np.zeros((1, 2))}, title="My plot")
        assert out.splitlines()[0] == "My plot"
        assert "o alpha" in out

    def test_two_series_get_distinct_markers(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[1.0, 1.0]])
        out = ascii_scatter({"a": a, "b": b})
        assert "o a" in out and "* b" in out
        body = "\n".join(l for l in out.splitlines() if l.startswith("|"))
        assert "o" in body and "*" in body

    def test_degenerate_single_point(self):
        out = ascii_scatter({"p": np.array([[3.0, 3.0]])})
        assert "o" in out

    def test_bounds_annotated(self):
        pts = np.array([[0.0, -5.0], [10.0, 5.0]])
        out = ascii_scatter({"p": pts})
        assert "y_max = 5" in out
        assert "y_min = -5" in out
        assert "[0, 10]" in out


class TestLines:
    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            ascii_lines([1, 2], {})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ParameterError):
            ascii_lines([1, 2, 3], {"y": [1, 2]})

    def test_renders(self):
        out = ascii_lines([1, 2, 3], {"y": [10, 20, 30]}, title="t")
        assert out.startswith("t")
        assert "o y" in out

    def test_two_series(self):
        out = ascii_lines([1, 2], {"a": [1, 2], "b": [2, 1]})
        assert "o a" in out and "* b" in out
