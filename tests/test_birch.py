"""Unit tests for the vector-space BIRCH instantiation."""

import numpy as np
import pytest

from repro.birch import BIRCH, BirchVectorPolicy, VectorClusterFeature
from repro.core.cftree import CFTree
from repro.exceptions import ParameterError


class TestVectorCF:
    def test_single_point(self):
        f = VectorClusterFeature(np.array([1.0, 2.0]))
        assert f.n == 1
        np.testing.assert_allclose(f.centroid, [1.0, 2.0])
        assert f.radius == 0.0

    def test_centroid_and_radius_match_numpy(self):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(30, 3))
        f = VectorClusterFeature(pts[0])
        for p in pts[1:]:
            f.absorb(p)
        np.testing.assert_allclose(f.centroid, pts.mean(axis=0), atol=1e-9)
        expected_r = np.sqrt(np.mean(np.sum((pts - pts.mean(axis=0)) ** 2, axis=1)))
        assert f.radius == pytest.approx(expected_r)

    def test_merge_equals_bulk(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=(10, 2)), rng.normal(size=(15, 2))
        fa = VectorClusterFeature(a[0])
        for p in a[1:]:
            fa.absorb(p)
        fb = VectorClusterFeature(b[0])
        for p in b[1:]:
            fb.absorb(p)
        fa.merge(fb)
        both = np.vstack([a, b])
        assert fa.n == 25
        np.testing.assert_allclose(fa.centroid, both.mean(axis=0), atol=1e-9)

    def test_admits_radius_rule(self):
        f = VectorClusterFeature(np.array([0.0, 0.0]))
        # Absorbing a point at distance 1 gives radius 0.5.
        assert f.admits(np.array([1.0, 0.0]), dist=1.0, threshold=0.5)
        assert not f.admits(np.array([2.0, 0.0]), dist=2.0, threshold=0.5)

    def test_admits_feature(self):
        fa = VectorClusterFeature(np.array([0.0, 0.0]))
        fb = VectorClusterFeature(np.array([1.0, 0.0]))
        assert fa.admits_feature(fb, dist=1.0, threshold=0.5)

    def test_constructor_validation(self):
        with pytest.raises(ParameterError):
            VectorClusterFeature()

    def test_clustroid_alias(self):
        f = VectorClusterFeature(np.array([2.0, 4.0]))
        np.testing.assert_allclose(f.clustroid, f.centroid)

    def test_distance_to(self):
        fa = VectorClusterFeature(np.array([0.0, 0.0]))
        fb = VectorClusterFeature(np.array([3.0, 4.0]))
        assert fa.distance_to(fb) == pytest.approx(5.0)


class TestBirchPolicy:
    def test_nonleaf_summaries_exact_after_inserts(self):
        policy = BirchVectorPolicy()
        tree = CFTree(policy, branching_factor=3, threshold=0.0, seed=0)
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 100, size=(60, 2))
        for p in pts:
            tree.insert(p)
        tree.check_invariants()
        if tree.root.is_leaf:
            pytest.skip("tree did not grow")
        # Each root entry summary must equal the exact CF of its subtree.
        for entry in tree.root.entries:
            exact = BirchVectorPolicy._subtree_cf(entry.child)
            assert entry.summary.n == exact.n
            np.testing.assert_allclose(entry.summary.ls, exact.ls, atol=1e-6)
            assert entry.summary.ss == pytest.approx(exact.ss)

    def test_total_population_at_root(self):
        policy = BirchVectorPolicy()
        tree = CFTree(policy, branching_factor=3, threshold=0.0, seed=0)
        rng = np.random.default_rng(3)
        for _ in range(40):
            tree.insert(rng.uniform(0, 50, size=2))
        if tree.root.is_leaf:
            pytest.skip("tree did not grow")
        assert sum(e.summary.n for e in tree.root.entries) == 40


class TestBirchDriver:
    def test_recovers_blobs(self, blob_data):
        points, _, centers = blob_data
        model = BIRCH(max_nodes=10, seed=0).fit(points)
        model.tree_.check_invariants()
        found = model.centroids_
        for c in centers:
            assert np.min(np.linalg.norm(found - c, axis=1)) < 1.5

    def test_rebuild_conserves_population(self, blob_data):
        points, _, _ = blob_data
        model = BIRCH(max_nodes=6, seed=0).fit(points)
        assert model.tree_.n_rebuilds >= 1
        assert sum(s.n for s in model.subclusters_) == len(points)

    def test_assign(self, blob_data):
        points, _, _ = blob_data
        model = BIRCH(max_nodes=10, seed=0).fit(points)
        labels = model.assign(points[:20])
        assert labels.shape == (20,)

    def test_tight_clusters_small_radius(self):
        rng = np.random.default_rng(4)
        pts = list(rng.normal(size=(100, 2)) * 0.01)
        model = BIRCH(threshold=0.5, seed=0).fit(pts)
        assert model.n_subclusters_ == 1
        assert model.subclusters_[0].radius < 0.05
