"""Golden regression tests: fixed tiny inputs with hand-verified outputs.

These protect the exact semantics of the paper's definitions against
behavioural drift during refactoring. Every expected value below was
derived by hand from the definitions in Section 4.
"""

import numpy as np
import pytest

from repro import BUBBLE
from repro.core.features import BubbleClusterFeature
from repro.fastmap import classical_mds
from repro.hac import AgglomerativeClusterer
from repro.metrics import EditDistance, EuclideanDistance, edit_distance


class TestDefinition41:
    """Clustroid = argmin RowSum (Definition 4.1)."""

    def test_line_of_three(self, euclidean):
        # Objects 0, 1, 5 on a line.
        # RowSum(0) = 1 + 25 = 26; RowSum(1) = 1 + 16 = 17; RowSum(5) = 41.
        f = BubbleClusterFeature(euclidean, np.array([0.0]))
        f.absorb(np.array([1.0]))
        f.absorb(np.array([5.0]))
        assert float(np.asarray(f.clustroid)[0]) == 1.0
        assert sorted(f.rowsums) == [17.0, 26.0, 41.0]

    def test_radius_definition_43(self, euclidean):
        # radius = sqrt(RowSum(clustroid) / n) = sqrt(17 / 3).
        f = BubbleClusterFeature(euclidean, np.array([0.0]))
        f.absorb(np.array([1.0]))
        f.absorb(np.array([5.0]))
        assert f.radius == pytest.approx(np.sqrt(17.0 / 3.0))


class TestDefinition44:
    """D0 and D2 (Definition 4.4)."""

    def test_d0(self, euclidean):
        fa = BubbleClusterFeature(euclidean, np.array([0.0, 0.0]))
        fb = BubbleClusterFeature(euclidean, np.array([6.0, 8.0]))
        assert fa.distance_to(fb) == 10.0

    def test_d2(self, euclidean):
        from repro.core.features import average_inter_cluster_distance

        a = [np.array([0.0]), np.array([2.0])]
        b = [np.array([4.0])]
        # d^2: (0-4)^2=16, (2-4)^2=4 -> sqrt(20/2) = sqrt(10).
        assert average_inter_cluster_distance(euclidean, a, b) == pytest.approx(
            np.sqrt(10.0)
        )


class TestPaperExamples:
    def test_lemma41_triangle_embedding(self):
        """The paper's example: distances (3, 4, 5) -> (0,0), (3,0), (0,4)."""
        dm = np.array([[0.0, 3.0, 5.0], [3.0, 0.0, 4.0], [5.0, 4.0, 0.0]])
        coords = classical_mds(dm, k=2)
        rebuilt = EuclideanDistance().pairwise(list(coords))
        np.testing.assert_allclose(rebuilt, dm, atol=1e-9)

    def test_edit_distance_examples(self):
        assert edit_distance("kitten", "sitting") == 3
        assert edit_distance("abc", "") == 3


class TestEndToEndGolden:
    def test_two_point_cluster_exact_state(self, euclidean):
        model = BUBBLE(euclidean, threshold=2.0, seed=0).fit(
            [np.array([0.0, 0.0]), np.array([1.0, 0.0])]
        )
        [sub] = model.subclusters_
        assert sub.n == 2
        # RowSum of both members is 1; the first becomes the clustroid.
        assert sub.radius == pytest.approx(np.sqrt(1.0 / 2.0))

    def test_three_well_separated_singletons(self, euclidean):
        model = BUBBLE(euclidean, threshold=0.5, seed=0).fit(
            [np.array([0.0, 0.0]), np.array([10.0, 0.0]), np.array([0.0, 10.0])]
        )
        assert model.n_subclusters_ == 3
        assert all(s.n == 1 and s.radius == 0.0 for s in model.subclusters_)

    def test_hac_merge_order_on_line(self):
        # Points 0, 1, 10: first merge must be (0, 1) at distance 1.
        pts = [np.array([0.0]), np.array([1.0]), np.array([10.0])]
        model = AgglomerativeClusterer(n_clusters=1, linkage="single")
        model.fit(objects=pts, metric=EuclideanDistance())
        (a, b, d0), (_, _, d1) = model.merges_
        assert {a, b} == {0, 1}
        assert d0 == 1.0
        assert d1 == 9.0  # single linkage: min(10-1, 10-0)

    def test_string_cluster_canonical_recovery(self):
        strings = ["data", "date", "dat", "data", "data"]
        model = BUBBLE(EditDistance(), threshold=1.0, seed=0).fit(strings)
        assert model.n_subclusters_ == 1
        assert model.subclusters_[0].clustroid == "data"
