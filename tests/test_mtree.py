"""Unit and property tests for the M-tree metric index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import EmptyDatasetError, ParameterError
from repro.metrics import EditDistance, EuclideanDistance
from repro.mtree import MTree


def brute_knn(metric, objects, query, k):
    dists = sorted((metric._distance(query, o), i) for i, o in enumerate(objects))
    return [(d, objects[i]) for d, i in dists[:k]]


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ParameterError):
            MTree("not a metric")
        with pytest.raises(ParameterError):
            MTree(EuclideanDistance(), node_capacity=1)

    def test_empty(self):
        tree = MTree(EuclideanDistance())
        assert len(tree) == 0
        with pytest.raises(EmptyDatasetError):
            tree.knn(np.zeros(2), 1)

    def test_build_and_len(self, rng):
        pts = list(rng.normal(size=(50, 2)))
        tree = MTree(EuclideanDistance(), node_capacity=4).build(pts)
        assert len(tree) == 50
        tree.check_invariants()
        assert tree.height >= 2

    def test_items_round_trip(self, rng):
        pts = [tuple(p) for p in rng.normal(size=(30, 2))]
        tree = MTree(EuclideanDistance(), node_capacity=4).build(pts)
        assert sorted(tree.items()) == sorted(pts)

    def test_duplicate_objects(self):
        tree = MTree(EditDistance(), node_capacity=3)
        for _ in range(10):
            tree.insert("same")
        tree.check_invariants()
        assert len(tree.range_query("same", 0)) == 10


class TestRangeQuery:
    def test_matches_brute_force(self, rng):
        pts = list(rng.uniform(0, 10, size=(80, 2)))
        tree = MTree(EuclideanDistance(), node_capacity=5).build(pts)
        q = np.array([5.0, 5.0])
        got = tree.range_query(q, 2.0)
        expected = [p for p in pts if np.linalg.norm(p - q) <= 2.0]
        assert len(got) == len(expected)
        got_set = {tuple(g) for g in got}
        assert got_set == {tuple(e) for e in expected}

    def test_zero_radius_exact_match(self):
        tree = MTree(EditDistance(), node_capacity=3).build(["a", "b", "ab"])
        assert tree.range_query("ab", 0) == ["ab"]

    def test_negative_radius_rejected(self):
        tree = MTree(EuclideanDistance()).build([np.zeros(2)])
        with pytest.raises(ParameterError):
            tree.range_query(np.zeros(2), -1.0)

    def test_radius_covers_all(self, rng):
        pts = list(rng.normal(size=(40, 2)))
        tree = MTree(EuclideanDistance(), node_capacity=4).build(pts)
        assert len(tree.range_query(np.zeros(2), 1e6)) == 40


class TestKnn:
    def test_matches_brute_force(self, rng):
        pts = list(rng.uniform(0, 10, size=(60, 3)))
        metric = EuclideanDistance()
        tree = MTree(metric, node_capacity=4).build(pts)
        q = rng.uniform(0, 10, size=3)
        got = tree.knn(q, 5)
        expected = brute_knn(EuclideanDistance(), pts, q, 5)
        np.testing.assert_allclose([d for d, _ in got], [d for d, _ in expected])

    def test_knn_on_strings(self):
        words = ["cat", "cart", "carts", "dog", "dig", "cog", "cot"]
        tree = MTree(EditDistance(), node_capacity=3).build(words)
        result = tree.knn("cat", 2)
        assert result[0] == (0.0, "cat")
        assert result[1][0] == 1.0

    def test_k_larger_than_size(self, rng):
        pts = list(rng.normal(size=(5, 2)))
        tree = MTree(EuclideanDistance()).build(pts)
        assert len(tree.knn(np.zeros(2), 10)) == 5

    def test_nearest(self, rng):
        pts = list(rng.normal(size=(20, 2)))
        tree = MTree(EuclideanDistance(), node_capacity=4).build(pts)
        result = tree.nearest(pts[7])
        assert result.neighbors[0].index == 7
        assert result.neighbors[0].distance == pytest.approx(0.0, abs=1e-12)

    def test_knn_prunes_versus_linear_scan(self, rng):
        # On clustered data the index must beat the linear scan in calls.
        centers = np.array([[0, 0], [100, 0], [0, 100], [100, 100]], dtype=float)
        pts = []
        for c in centers:
            pts.extend(list(c + rng.normal(size=(100, 2))))
        metric = EuclideanDistance()
        tree = MTree(metric, node_capacity=8).build(pts)
        build_calls = metric.n_calls
        for _ in range(10):
            q = centers[int(rng.integers(0, 4))] + rng.normal(size=2)
            tree.knn(q, 3)
        per_query = (metric.n_calls - build_calls) / 10
        assert per_query < len(pts) * 0.6


class TestProperties:
    @given(
        words=st.lists(st.text(alphabet="abc", max_size=6), min_size=1, max_size=40),
        query=st.text(alphabet="abc", max_size=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_knn_always_matches_brute_force(self, words, query):
        metric = EditDistance()
        tree = MTree(metric, node_capacity=3).build(words)
        tree.check_invariants()
        got = tree.knn(query, 3)
        expected = brute_knn(EditDistance(), words, query, 3)
        assert [d for d, _ in got] == [d for d, _ in expected]

    @given(
        pts=st.lists(
            st.tuples(
                st.floats(min_value=-50, max_value=50, allow_nan=False),
                st.floats(min_value=-50, max_value=50, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        ),
        radius=st.floats(min_value=0, max_value=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_range_query_exact(self, pts, radius):
        pts = [np.asarray(p) for p in pts]
        metric = EuclideanDistance()
        tree = MTree(metric, node_capacity=4).build(pts)
        q = np.zeros(2)
        got = tree.range_query(q, radius)
        expected = [p for p in pts if float(np.linalg.norm(p)) <= radius]
        assert len(got) == len(expected)
