"""Unit and property tests for the discrete Fréchet distance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MetricError
from repro.metrics import DiscreteFrechetDistance, discrete_frechet

curves = st.lists(
    st.tuples(
        st.floats(min_value=-10, max_value=10, allow_nan=False),
        st.floats(min_value=-10, max_value=10, allow_nan=False),
    ),
    min_size=1,
    max_size=8,
).map(lambda pts: np.asarray(pts, dtype=float))


class TestKnownValues:
    def test_parallel_segments(self):
        # Two horizontal segments one unit apart: leash length 1.
        assert discrete_frechet([[0, 0], [1, 0]], [[0, 1], [1, 1]]) == pytest.approx(1.0)

    def test_identical_curves(self):
        c = [[0, 0], [1, 2], [3, 1]]
        assert discrete_frechet(c, c) == 0.0

    def test_single_points(self):
        assert discrete_frechet([[0, 0]], [[3, 4]]) == pytest.approx(5.0)

    def test_point_vs_curve(self):
        # One point against a segment: leash must reach the far end.
        d = discrete_frechet([[0, 0]], [[0, 0], [5, 0]])
        assert d == pytest.approx(5.0)

    def test_reversal_matters(self):
        # Fréchet is order-sensitive: a curve against its reverse differs.
        c = np.array([[0.0, 0.0], [10.0, 0.0]])
        assert discrete_frechet(c, c[::-1]) == pytest.approx(10.0)

    def test_one_dimensional_curves(self):
        assert discrete_frechet([0.0, 1.0, 2.0], [0.0, 1.0, 2.5]) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(MetricError):
            discrete_frechet([[0, 0]], [[0, 0, 0]])
        with pytest.raises(MetricError):
            discrete_frechet(np.zeros((0, 2)), [[0, 0]])


class TestMetricAxioms:
    @given(a=curves, b=curves)
    @settings(max_examples=100, deadline=None)
    def test_symmetry_nonnegativity(self, a, b):
        m = DiscreteFrechetDistance()
        dab = m.distance(a, b)
        assert dab >= 0
        assert dab == pytest.approx(m.distance(b, a))
        assert m.distance(a, a) == 0.0

    @given(a=curves, b=curves, c=curves)
    @settings(max_examples=100, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        m = DiscreteFrechetDistance()
        assert m.distance(a, b) <= m.distance(a, c) + m.distance(c, b) + 1e-9

    @given(a=curves, b=curves)
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_hausdorff_like_extremes(self, a, b):
        """Fréchet >= max-min point distance (directed Hausdorff lower
        bound) and <= max pairwise distance."""
        m = DiscreteFrechetDistance()
        d = m.distance(a, b)
        diff = a[:, None, :] - b[None, :, :]
        pd = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        assert d >= pd.min(axis=1).max() - 1e-9
        assert d <= pd.max() + 1e-9


class TestWithBubble:
    def test_clusters_trajectory_families(self):
        """BUBBLE groups trajectories by shape under Fréchet distance."""
        from repro import BUBBLE

        rng = np.random.default_rng(0)
        t = np.linspace(0, 1, 12)

        def straight():
            return np.column_stack([t * 10, np.zeros_like(t)]) + 0.1 * rng.normal(size=(12, 2))

        def arc():
            return np.column_stack([t * 10, 4 * np.sin(np.pi * t)]) + 0.1 * rng.normal(size=(12, 2))

        curves_data = [straight() for _ in range(15)] + [arc() for _ in range(15)]
        truth = np.array([0] * 15 + [1] * 15)
        order = rng.permutation(30)
        curves_data = [curves_data[i] for i in order]
        truth = truth[order]

        metric = DiscreteFrechetDistance()
        model = BUBBLE(metric, threshold=1.0, seed=0).fit(curves_data)
        labels = model.assign(curves_data)
        from repro.evaluation import misplaced_count

        assert misplaced_count(truth, labels) == 0
