"""Unit and property tests for the VP-tree and the silhouette score."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import silhouette_score
from repro.exceptions import EmptyDatasetError, NotFittedError, ParameterError
from repro.metrics import EditDistance, EuclideanDistance
from repro.mtree import MTree
from repro.vptree import VPTree


def brute_knn(metric, objects, query, k):
    dists = sorted((metric._distance(query, o), i) for i, o in enumerate(objects))
    return [d for d, _ in dists[:k]]


class TestVPTreeBasics:
    def test_validation(self):
        with pytest.raises(ParameterError):
            VPTree("metric")
        with pytest.raises(ParameterError):
            VPTree(EuclideanDistance(), leaf_size=0)

    def test_empty(self):
        with pytest.raises(EmptyDatasetError):
            VPTree(EuclideanDistance(), seed=0).build([])

    def test_not_built(self):
        tree = VPTree(EuclideanDistance(), seed=0)
        with pytest.raises(NotFittedError):
            tree.knn(np.zeros(2), 1)
        with pytest.raises(NotFittedError):
            tree.range_query(np.zeros(2), 1.0)

    def test_len(self, rng):
        tree = VPTree(EuclideanDistance(), seed=0).build(list(rng.normal(size=(30, 2))))
        assert len(tree) == 30

    def test_duplicates(self):
        tree = VPTree(EditDistance(), leaf_size=2, seed=0).build(["x"] * 12)
        assert len(tree.range_query("x", 0)) == 12


class TestVPTreeQueries:
    def test_knn_matches_brute_force(self, rng):
        pts = list(rng.uniform(0, 10, size=(80, 3)))
        tree = VPTree(EuclideanDistance(), leaf_size=4, seed=0).build(pts)
        q = rng.uniform(0, 10, size=3)
        got = [d for d, _ in tree.knn(q, 6)]
        np.testing.assert_allclose(got, brute_knn(EuclideanDistance(), pts, q, 6))

    def test_range_matches_brute_force(self, rng):
        pts = list(rng.uniform(0, 10, size=(70, 2)))
        tree = VPTree(EuclideanDistance(), leaf_size=4, seed=1).build(pts)
        q = np.array([5.0, 5.0])
        got = tree.range_query(q, 2.5)
        expected = [p for p in pts if np.linalg.norm(p - q) <= 2.5]
        assert len(got) == len(expected)

    def test_knn_prunes_vs_linear(self, rng):
        centers = np.array([[0, 0], [100, 0], [0, 100], [100, 100]], dtype=float)
        pts = []
        for c in centers:
            pts.extend(list(c + rng.normal(size=(100, 2))))
        metric = EuclideanDistance()
        tree = VPTree(metric, leaf_size=8, seed=2).build(pts)
        built = metric.n_calls
        for _ in range(10):
            q = centers[int(rng.integers(0, 4))] + rng.normal(size=2)
            tree.knn(q, 3)
        per_query = (metric.n_calls - built) / 10
        assert per_query < len(pts) * 0.6

    def test_agrees_with_mtree(self, rng):
        pts = list(rng.uniform(0, 50, size=(60, 2)))
        vp = VPTree(EuclideanDistance(), seed=3).build(pts)
        mt = MTree(EuclideanDistance(), node_capacity=4).build(pts)
        for _ in range(5):
            q = rng.uniform(0, 50, size=2)
            d_vp = [d for d, _ in vp.knn(q, 4)]
            d_mt = [d for d, _ in mt.knn(q, 4)]
            np.testing.assert_allclose(d_vp, d_mt)

    @given(
        words=st.lists(st.text(alphabet="abc", max_size=5), min_size=1, max_size=30),
        query=st.text(alphabet="abc", max_size=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_knn_property_strings(self, words, query):
        tree = VPTree(EditDistance(), leaf_size=3, seed=0).build(words)
        got = [d for d, _ in tree.knn(query, 3)]
        assert got == brute_knn(EditDistance(), words, query, 3)


class TestSilhouette:
    def test_well_separated_near_one(self, blob_data):
        points, labels, _ = blob_data
        s = silhouette_score(EuclideanDistance(), points, labels, sample_size=None)
        assert s > 0.8

    def test_random_labels_near_zero(self, blob_data):
        points, labels, _ = blob_data
        rng = np.random.default_rng(0)
        shuffled = rng.permutation(labels)
        s = silhouette_score(EuclideanDistance(), points, shuffled, sample_size=None)
        assert abs(s) < 0.2

    def test_sampled_close_to_full(self, blob_data):
        points, labels, _ = blob_data
        full = silhouette_score(EuclideanDistance(), points, labels, sample_size=None)
        sampled = silhouette_score(
            EuclideanDistance(), points, labels, sample_size=100, seed=0
        )
        assert sampled == pytest.approx(full, abs=0.1)

    def test_works_on_strings(self):
        strings = ["cat", "cats", "cart"] * 4 + ["dog", "dogs", "dig"] * 4
        labels = [0] * 12 + [1] * 12
        s = silhouette_score(EditDistance(), strings, labels, sample_size=None)
        assert s > 0.3

    def test_validation(self, euclidean):
        with pytest.raises(ParameterError):
            silhouette_score(euclidean, [np.zeros(2)], [0, 1])
        with pytest.raises(ParameterError):
            silhouette_score(euclidean, [np.zeros(2)], [0])
        with pytest.raises(ParameterError):
            silhouette_score(euclidean, [np.zeros(2), np.ones(2)], [0, 0])

    def test_all_singletons_rejected(self, euclidean):
        pts = [np.zeros(2), np.ones(2), np.full(2, 5.0)]
        with pytest.raises(ParameterError):
            silhouette_score(euclidean, pts, [0, 1, 2])
