"""Unit tests for the RED comparator and CLARANS."""

import numpy as np
import pytest

from repro.clarans import CLARANS
from repro.exceptions import EmptyDatasetError, NotFittedError, ParameterError
from repro.metrics import EuclideanDistance, RelativeEditDistance
from repro.red import REDClusterer


class TestRED:
    def test_groups_variants(self, tiny_strings):
        strings, labels = tiny_strings
        model = REDClusterer(threshold=0.35).fit(strings)
        assert model.n_clusters_ <= 5
        # Variants of the same canonical name share a cluster: a missing
        # comma (RED ~0.06) and an initialed given name (RED ~0.33).
        assert model.labels_[0] == model.labels_[2]
        assert model.labels_[0] == model.labels_[1]
        assert model.labels_[3] == model.labels_[4]
        assert model.labels_[3] == model.labels_[5]

    def test_distinct_names_apart(self, tiny_strings):
        strings, _ = tiny_strings
        model = REDClusterer(threshold=0.3).fit(strings)
        assert model.labels_[0] != model.labels_[3]
        assert model.labels_[0] != model.labels_[6]

    def test_threshold_zero_rejected(self):
        with pytest.raises(ParameterError):
            REDClusterer(threshold=0.0)

    def test_tight_threshold_many_clusters(self, tiny_strings):
        strings, _ = tiny_strings
        loose = REDClusterer(threshold=0.5).fit(strings).n_clusters_
        tight = REDClusterer(threshold=0.05).fit(strings).n_clusters_
        assert tight >= loose

    def test_exact_cache_avoids_calls(self):
        strings = ["alpha", "alpha", "alpha", "beta"]
        cached = REDClusterer(threshold=0.2, cache_exact=True)
        cached.fit(strings)
        uncached = REDClusterer(threshold=0.2, cache_exact=False)
        uncached.fit(strings)
        assert cached.metric.n_calls < uncached.metric.n_calls

    def test_empty_raises(self):
        with pytest.raises(EmptyDatasetError):
            REDClusterer().fit([])

    def test_not_fitted(self):
        model = REDClusterer()
        with pytest.raises(NotFittedError):
            _ = model.n_clusters_
        with pytest.raises(NotFittedError):
            model.assign(["x"])

    def test_assign(self, tiny_strings):
        strings, _ = tiny_strings
        model = REDClusterer(threshold=0.3).fit(strings)
        out = model.assign(["powell, allison"])
        assert out[0] == model.labels_[0]

    def test_labels_dense(self, tiny_strings):
        strings, _ = tiny_strings
        model = REDClusterer(threshold=0.3).fit(strings)
        assert set(model.labels_.tolist()) == set(range(model.n_clusters_))


class TestCLARANS:
    def test_recovers_separated_blobs(self, blob_data):
        points, labels, centers = blob_data
        metric = EuclideanDistance()
        model = CLARANS(5, metric, num_local=2, max_neighbors=100, seed=0).fit(points)
        found = np.asarray(model.medoids_)
        for c in centers:
            assert np.min(np.linalg.norm(found - c, axis=1)) < 1.0

    def test_cost_is_sum_of_nearest(self, blob_data):
        points, _, _ = blob_data
        metric = EuclideanDistance()
        model = CLARANS(3, metric, num_local=1, max_neighbors=30, seed=1).fit(points)
        manual = 0.0
        for p in points:
            manual += min(float(np.linalg.norm(np.asarray(p) - np.asarray(m))) for m in model.medoids_)
        assert model.cost_ == pytest.approx(manual, rel=1e-9)

    def test_labels_consistent_with_medoids(self, blob_data):
        points, _, _ = blob_data
        model = CLARANS(4, EuclideanDistance(), num_local=1, max_neighbors=30, seed=2).fit(points)
        assert model.labels_.shape == (len(points),)
        assert model.labels_.max() < 4

    def test_medoids_are_members(self, blob_data):
        points, _, _ = blob_data
        model = CLARANS(3, EuclideanDistance(), num_local=1, max_neighbors=20, seed=3).fit(points)
        pts_set = {tuple(np.asarray(p)) for p in points}
        for m in model.medoids_:
            assert tuple(np.asarray(m)) in pts_set

    def test_k_equals_n(self):
        pts = [np.array([float(i), 0.0]) for i in range(4)]
        model = CLARANS(4, EuclideanDistance(), max_neighbors=5, seed=0).fit(pts)
        assert model.cost_ == pytest.approx(0.0)

    def test_validation(self):
        m = EuclideanDistance()
        with pytest.raises(ParameterError):
            CLARANS(0, m)
        with pytest.raises(ParameterError):
            CLARANS(2, m, num_local=0)
        with pytest.raises(ParameterError):
            CLARANS(2, m, max_neighbors=0)
        with pytest.raises(EmptyDatasetError):
            CLARANS(1, m).fit([])
        with pytest.raises(ParameterError):
            CLARANS(5, m).fit([np.zeros(2)])

    def test_not_fitted(self):
        model = CLARANS(2, EuclideanDistance())
        with pytest.raises(NotFittedError):
            _ = model.n_clusters_

    def test_single_cluster(self, blob_data):
        points, _, _ = blob_data
        model = CLARANS(1, EuclideanDistance(), max_neighbors=10, seed=4).fit(points)
        assert model.n_clusters_ == 1
        assert np.all(model.labels_ == 0)
