"""Unit tests for the RED comparator and CLARANS."""

import numpy as np
import pytest

from repro.clarans import CLARANS
from repro.exceptions import EmptyDatasetError, NotFittedError, ParameterError
from repro.metrics import EuclideanDistance, RelativeEditDistance
from repro.red import REDClusterer


class TestRED:
    def test_groups_variants(self, tiny_strings):
        strings, labels = tiny_strings
        model = REDClusterer(threshold=0.35).fit(strings)
        assert model.n_clusters_ <= 5
        # Variants of the same canonical name share a cluster: a missing
        # comma (RED ~0.06) and an initialed given name (RED ~0.33).
        assert model.labels_[0] == model.labels_[2]
        assert model.labels_[0] == model.labels_[1]
        assert model.labels_[3] == model.labels_[4]
        assert model.labels_[3] == model.labels_[5]

    def test_distinct_names_apart(self, tiny_strings):
        strings, _ = tiny_strings
        model = REDClusterer(threshold=0.3).fit(strings)
        assert model.labels_[0] != model.labels_[3]
        assert model.labels_[0] != model.labels_[6]

    def test_threshold_zero_rejected(self):
        with pytest.raises(ParameterError):
            REDClusterer(threshold=0.0)

    def test_tight_threshold_many_clusters(self, tiny_strings):
        strings, _ = tiny_strings
        loose = REDClusterer(threshold=0.5).fit(strings).n_clusters_
        tight = REDClusterer(threshold=0.05).fit(strings).n_clusters_
        assert tight >= loose

    def test_exact_cache_avoids_calls(self):
        strings = ["alpha", "alpha", "alpha", "beta"]
        cached = REDClusterer(threshold=0.2, cache_exact=True)
        cached.fit(strings)
        uncached = REDClusterer(threshold=0.2, cache_exact=False)
        uncached.fit(strings)
        assert cached.metric.n_calls < uncached.metric.n_calls

    def test_empty_raises(self):
        with pytest.raises(EmptyDatasetError):
            REDClusterer().fit([])

    def test_not_fitted(self):
        model = REDClusterer()
        with pytest.raises(NotFittedError):
            _ = model.n_clusters_
        with pytest.raises(NotFittedError):
            model.assign(["x"])

    def test_assign(self, tiny_strings):
        strings, _ = tiny_strings
        model = REDClusterer(threshold=0.3).fit(strings)
        out = model.assign(["powell, allison"])
        assert out[0] == model.labels_[0]

    def test_labels_dense(self, tiny_strings):
        strings, _ = tiny_strings
        model = REDClusterer(threshold=0.3).fit(strings)
        assert set(model.labels_.tolist()) == set(range(model.n_clusters_))


class TestCLARANS:
    def test_recovers_separated_blobs(self, blob_data):
        points, labels, centers = blob_data
        metric = EuclideanDistance()
        model = CLARANS(5, metric, num_local=2, max_neighbors=100, seed=0).fit(points)
        found = np.asarray(model.medoids_)
        for c in centers:
            assert np.min(np.linalg.norm(found - c, axis=1)) < 1.0

    def test_cost_is_sum_of_nearest(self, blob_data):
        points, _, _ = blob_data
        metric = EuclideanDistance()
        model = CLARANS(3, metric, num_local=1, max_neighbors=30, seed=1).fit(points)
        manual = 0.0
        for p in points:
            manual += min(float(np.linalg.norm(np.asarray(p) - np.asarray(m))) for m in model.medoids_)
        assert model.cost_ == pytest.approx(manual, rel=1e-9)

    def test_labels_consistent_with_medoids(self, blob_data):
        points, _, _ = blob_data
        model = CLARANS(4, EuclideanDistance(), num_local=1, max_neighbors=30, seed=2).fit(points)
        assert model.labels_.shape == (len(points),)
        assert model.labels_.max() < 4

    def test_medoids_are_members(self, blob_data):
        points, _, _ = blob_data
        model = CLARANS(3, EuclideanDistance(), num_local=1, max_neighbors=20, seed=3).fit(points)
        pts_set = {tuple(np.asarray(p)) for p in points}
        for m in model.medoids_:
            assert tuple(np.asarray(m)) in pts_set

    def test_k_equals_n(self):
        pts = [np.array([float(i), 0.0]) for i in range(4)]
        model = CLARANS(4, EuclideanDistance(), max_neighbors=5, seed=0).fit(pts)
        assert model.cost_ == pytest.approx(0.0)

    def test_validation(self):
        m = EuclideanDistance()
        with pytest.raises(ParameterError):
            CLARANS(0, m)
        with pytest.raises(ParameterError):
            CLARANS(2, m, num_local=0)
        with pytest.raises(ParameterError):
            CLARANS(2, m, max_neighbors=0)
        with pytest.raises(EmptyDatasetError):
            CLARANS(1, m).fit([])
        with pytest.raises(ParameterError):
            CLARANS(5, m).fit([np.zeros(2)])

    def test_not_fitted(self):
        model = CLARANS(2, EuclideanDistance())
        with pytest.raises(NotFittedError):
            _ = model.n_clusters_

    def test_single_cluster(self, blob_data):
        points, _, _ = blob_data
        model = CLARANS(1, EuclideanDistance(), max_neighbors=10, seed=4).fit(points)
        assert model.n_clusters_ == 1
        assert np.all(model.labels_ == 0)

    def test_k_equals_one_finds_exact_medoid(self):
        # k == 1 exercises the second-nearest == inf path: every object
        # "loses" its medoid on a swap, so the delta must come entirely
        # from the candidate's distance column.
        pts = [np.array([float(x)]) for x in (0.0, 1.0, 2.0, 3.0, 4.5, 9.0, 9.5, 10.0)]
        model = CLARANS(1, EuclideanDistance(), num_local=2, max_neighbors=200, seed=7).fit(pts)
        brute = min(
            sum(abs(float(p[0]) - float(q[0])) for q in pts) for p in pts
        )
        assert model.cost_ == pytest.approx(brute)
        assert np.all(model.labels_ == 0)

    def test_duplicate_objects(self):
        pts = [np.zeros(2)] * 3 + [np.full(2, 5.0)] * 3
        model = CLARANS(2, EuclideanDistance(), max_neighbors=20, seed=5).fit(pts)
        assert model.cost_ == pytest.approx(0.0)
        found = {tuple(np.asarray(m)) for m in model.medoids_}
        assert found == {(0.0, 0.0), (5.0, 5.0)}

    def test_medoid_indices_match_medoids(self, blob_data):
        points, _, _ = blob_data
        model = CLARANS(3, EuclideanDistance(), num_local=1, max_neighbors=20, seed=6).fit(points)
        assert len(model.medoid_indices_) == 3
        for idx, medoid in zip(model.medoid_indices_, model.medoids_):
            assert np.array_equal(np.asarray(points[idx]), np.asarray(medoid))

    def test_no_final_rederivation_pass(self):
        # With k == n every proposed swap hits a sitting medoid and is
        # skipped without a distance call, so the whole fit costs exactly
        # the k*n = n^2 calls of the initial assignment. The old
        # implementation re-derived labels with a second k*n pass at the
        # end (2*n^2 total); this pins the saving.
        pts = [np.array([float(i), 0.0]) for i in range(5)]
        metric = EuclideanDistance()
        CLARANS(5, metric, num_local=1, max_neighbors=10, seed=0).fit(pts)
        assert metric.n_calls == 5 * 5

    def test_examined_resets_on_accepted_swap(self):
        # Scripted proposals: a skipped medoid proposal (examined -> 1),
        # then an accepted swap. If the accepted swap resets the examined
        # counter, the search has budget (max_neighbors=2) for two more
        # evaluated proposals; without the reset it would stop after one.
        pts = [np.array([x]) for x in (0.0, 1.0, 2.0, 10.0)]
        model = _CountingCLARANS(1, EuclideanDistance(), num_local=1, max_neighbors=2)
        model._rng = _ScriptedRNG(
            choices=[[3]],
            # (swap_out, swap_in) pairs: medoid self-proposal, accepted
            # move 10 -> 1, rejected 1 -> 0, rejected 1 -> 2.
            integers=[0, 3, 0, 1, 0, 0, 0, 2],
        )
        model.fit(pts)
        assert model.delta_calls == 3
        assert model._rng.exhausted
        assert model.medoid_indices_ == [1]
        assert model.cost_ == pytest.approx(11.0)


class _ScriptedRNG:
    """Pops predetermined values for CLARANS's choice/integers draws."""

    def __init__(self, choices, integers):
        self._choices = [np.asarray(c) for c in choices]
        self._integers = list(integers)

    def choice(self, n, size, replace=False):
        return self._choices.pop(0)

    def integers(self, low, high):
        return self._integers.pop(0)

    @property
    def exhausted(self):
        return not self._choices and not self._integers


class _CountingCLARANS(CLARANS):
    """CLARANS that counts how many swap proposals were actually evaluated."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.delta_calls = 0

    def _swap_delta(self, *args, **kwargs):
        self.delta_calls += 1
        return super()._swap_delta(*args, **kwargs)
