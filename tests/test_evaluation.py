"""Unit tests for the evaluation metrics."""

import numpy as np
import pytest

from repro.evaluation import (
    adjusted_rand_index,
    clustroid_quality,
    confusion_matrix,
    distortion,
    hungarian_accuracy,
    majority_mapping,
    min_possible_clustroid_quality,
    misplaced_count,
    rand_index,
)
from repro.exceptions import ParameterError


class TestDistortion:
    def test_zero_for_points_at_centroid(self):
        pts = np.zeros((5, 2))
        assert distortion(pts, np.zeros(5, dtype=int)) == 0.0

    def test_known_value(self):
        pts = np.array([[0.0], [2.0]])
        # centroid 1.0 -> (1 + 1) = 2
        assert distortion(pts, np.array([0, 0])) == pytest.approx(2.0)

    def test_two_clusters(self):
        pts = np.array([[0.0], [2.0], [10.0], [12.0]])
        labels = np.array([0, 0, 1, 1])
        assert distortion(pts, labels) == pytest.approx(4.0)

    def test_against_custom_centers(self):
        pts = np.array([[0.0], [2.0]])
        # against center 0: 0 + 4
        assert distortion(pts, np.array([0, 0]), centers=[np.array([0.0])]) == pytest.approx(4.0)

    def test_finer_clustering_never_increases_distortion(self):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(50, 2))
        one = distortion(pts, np.zeros(50, dtype=int))
        two = distortion(pts, (pts[:, 0] > 0).astype(int))
        assert two <= one

    def test_validation(self):
        with pytest.raises(ParameterError):
            distortion(np.zeros((2, 2)), np.zeros(3, dtype=int))
        with pytest.raises(ParameterError):
            distortion(np.zeros((0, 2)), np.zeros(0, dtype=int))


class TestClustroidQuality:
    def test_zero_when_centers_found_exactly(self):
        centers = np.array([[0.0, 0.0], [5.0, 5.0]])
        assert clustroid_quality(centers, centers) == 0.0

    def test_known_value(self):
        true = np.array([[0.0, 0.0]])
        found = np.array([[3.0, 4.0], [30.0, 40.0]])
        assert clustroid_quality(true, found) == pytest.approx(5.0)

    def test_extra_found_centers_do_not_hurt(self):
        true = np.array([[0.0], [10.0]])
        found_small = np.array([[0.1], [9.9]])
        found_big = np.vstack([found_small, [[100.0]]])
        assert clustroid_quality(true, found_big) == pytest.approx(
            clustroid_quality(true, found_small)
        )

    def test_min_possible(self):
        centers = np.array([[0.0, 0.0]])
        pts = np.array([[1.0, 0.0], [0.0, 2.0], [3.0, 3.0]])
        labels = np.zeros(3, dtype=int)
        assert min_possible_clustroid_quality(centers, pts, labels) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            clustroid_quality(np.zeros((2, 2)), np.zeros((2, 3)))
        with pytest.raises(ParameterError):
            clustroid_quality(np.zeros((0, 2)), np.zeros((1, 2)))


class TestMatching:
    def test_confusion_matrix(self):
        cm = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        expected = np.array([[1, 1], [0, 2]])
        np.testing.assert_array_equal(cm, expected)

    def test_majority_mapping(self):
        m = majority_mapping([0, 0, 1, 1, 1], [0, 0, 0, 1, 1])
        # pred 0 holds {0,0,1} -> majority 0; pred 1 holds {1,1} -> 1.
        np.testing.assert_array_equal(m, [0, 1])

    def test_misplaced_count_perfect(self):
        assert misplaced_count([0, 0, 1, 1], [1, 1, 0, 0]) == 0  # relabeled but pure

    def test_misplaced_count_one_error(self):
        assert misplaced_count([0, 0, 0, 1, 1, 1], [0, 0, 0, 0, 1, 1]) == 1

    def test_misplaced_on_split_cluster_is_zero(self):
        # Splitting a true class into two pure clusters misplaces nothing.
        assert misplaced_count([0, 0, 0, 0], [0, 0, 1, 1]) == 0

    def test_hungarian_accuracy_perfect(self):
        assert hungarian_accuracy([0, 1, 2], [2, 0, 1]) == 1.0

    def test_hungarian_accuracy_partial(self):
        acc = hungarian_accuracy([0, 0, 1, 1], [0, 1, 1, 1])
        assert acc == pytest.approx(0.75)

    def test_label_validation(self):
        with pytest.raises(ParameterError):
            confusion_matrix([0, 1], [0])
        with pytest.raises(ParameterError):
            confusion_matrix([], [])
        with pytest.raises(ParameterError):
            confusion_matrix([-1, 0], [0, 0])


class TestRandIndices:
    def test_rand_perfect(self):
        assert rand_index([0, 0, 1, 1], [1, 1, 0, 0]) == 1.0

    def test_rand_known(self):
        # labels [0,0,1] vs [0,1,1]: pairs (01):T/F, (02):F/F, (12):F/T -> 1/3.
        assert rand_index([0, 0, 1], [0, 1, 1]) == pytest.approx(1 / 3)

    def test_ari_perfect(self):
        assert adjusted_rand_index([0, 0, 1, 1], [1, 1, 0, 0]) == pytest.approx(1.0)

    def test_ari_random_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 5, size=2000)
        b = rng.integers(0, 5, size=2000)
        assert abs(adjusted_rand_index(a, b)) < 0.02

    def test_ari_matches_sklearn_formula_on_scipy(self):
        # Cross-check against an independently computed value.
        a = [0, 0, 1, 1, 2, 2]
        b = [0, 0, 1, 2, 2, 2]
        assert adjusted_rand_index(a, b) == pytest.approx(0.4444444, abs=1e-6)
