"""Property-based tests: CF*-tree invariants under arbitrary workloads."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bubble import BubblePolicy
from repro.core.bubble_fm import BubbleFMPolicy
from repro.core.cftree import CFTree
from repro.metrics import EditDistance, EuclideanDistance

point_lists = st.lists(
    st.tuples(
        st.floats(min_value=-1000, max_value=1000, allow_nan=False),
        st.floats(min_value=-1000, max_value=1000, allow_nan=False),
    ),
    min_size=1,
    max_size=80,
)

word_lists = st.lists(
    st.text(alphabet="abcd ", min_size=0, max_size=8), min_size=1, max_size=50
)


def build(points, policy_cls=BubblePolicy, metric=None, **tree_kw):
    metric = metric if metric is not None else EuclideanDistance()
    policy = policy_cls(metric, representation_number=4, sample_size=8, seed=0)
    defaults = dict(branching_factor=4, threshold=0.5, seed=0)
    defaults.update(tree_kw)
    tree = CFTree(policy, **defaults)
    for p in points:
        tree.insert(np.asarray(p, dtype=float))
    return tree


class TestTreeInvariants:
    @given(points=point_lists)
    @settings(max_examples=60, deadline=None)
    def test_structure_after_random_inserts(self, points):
        tree = build(points)
        tree.check_invariants()

    @given(points=point_lists)
    @settings(max_examples=60, deadline=None)
    def test_population_conserved(self, points):
        tree = build(points)
        assert sum(f.n for f in tree.leaf_features()) == len(points)

    @given(points=point_lists)
    @settings(max_examples=40, deadline=None)
    def test_rebuild_preserves_population_and_structure(self, points):
        tree = build(points)
        tree.rebuild(tree.threshold * 2 + 1.0)
        tree.check_invariants()
        assert sum(f.n for f in tree.leaf_features()) == len(points)

    @given(points=point_lists)
    @settings(max_examples=40, deadline=None)
    def test_memory_bound_always_respected(self, points):
        tree = build(points, max_nodes=5)
        assert tree.n_nodes <= 5
        tree.check_invariants()

    @given(points=point_lists)
    @settings(max_examples=30, deadline=None)
    def test_bubble_fm_same_invariants(self, points):
        tree = build(points, policy_cls=BubbleFMPolicy, max_nodes=6)
        tree.check_invariants()
        assert sum(f.n for f in tree.leaf_features()) == len(points)

    @given(points=point_lists)
    @settings(max_examples=40, deadline=None)
    def test_every_cluster_radius_finite(self, points):
        tree = build(points)
        for f in tree.leaf_features():
            assert np.isfinite(f.radius)
            assert f.radius >= 0


class TestStringTreeInvariants:
    @given(words=word_lists)
    @settings(max_examples=40, deadline=None)
    def test_structure_on_strings(self, words):
        metric = EditDistance()
        policy = BubblePolicy(metric, representation_number=4, sample_size=8, seed=0)
        tree = CFTree(policy, branching_factor=4, threshold=1.0, seed=0)
        for w in words:
            tree.insert(w)
        tree.check_invariants()
        assert sum(f.n for f in tree.leaf_features()) == len(words)

    @given(words=word_lists)
    @settings(max_examples=30, deadline=None)
    def test_routing_returns_existing_feature(self, words):
        metric = EditDistance()
        policy = BubblePolicy(metric, representation_number=4, sample_size=8, seed=0)
        tree = CFTree(policy, branching_factor=4, threshold=1.0, seed=0)
        for w in words:
            tree.insert(w)
        features = set(map(id, tree.leaf_features()))
        for w in words[:5]:
            assert id(tree.nearest_leaf_feature(w)) in features
