"""Tests for the parallel sharded build and the parallel global phase.

Process-pool legs (``n_jobs > 1``) spawn real worker processes, so
everything they ship — metrics, poison predicates — lives at module level
to stay picklable. The determinism contract under test: the merged tree
is a pure function of ``(objects, seed, n_shards)``; ``n_jobs`` only
chooses the executor.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.preclusterer import BUBBLE
from repro.exceptions import (
    EmptyDatasetError,
    MetricBudgetExceededError,
    ParameterError,
)
from repro.metrics import CachedDistance, EditDistance, EuclideanDistance
from repro.observability import Tracer
from repro.parallel import (
    global_index,
    pairwise_matrix,
    parallel_fit,
    resolve_n_shards,
    shard_objects,
)
from repro.parallel.matrix import _band_bounds
from repro.robustness import FlakyMetric, GuardedMetric

__all__: list[str] = []


def tree_signature(tree):
    """Structure + leaf clustroids, byte-exact — equal iff trees identical."""
    sig = []

    def walk(node):
        if node.is_leaf:
            sig.append(
                tuple(repr(np.asarray(f.clustroid).tolist()) for f in node.entries)
            )
        else:
            sig.append(len(node.entries))
            for entry in node.entries:
                walk(entry.child)

    walk(tree.root)
    return sig


def make_blobs(n=200, seed=3, n_centers=5, dim=2):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, 20.0, size=(n_centers, dim))
    points = [
        centers[i % n_centers] + 0.4 * rng.normal(size=dim) for i in range(n)
    ]
    return points


def poisoned(obj) -> bool:
    """Module-level poison predicate so FlakyMetric survives the pool pickle."""
    return bool(np.asarray(obj)[0] > 1e5)


class TestShardHelpers:
    def test_round_robin_partition(self):
        items = list(range(10))
        shards = shard_objects(items, 3)
        assert shards == [[0, 3, 6, 9], [1, 4, 7], [2, 5, 8]]

    def test_global_index_inverts_round_robin(self):
        items = list(range(23))
        n_shards = 4
        shards = shard_objects(items, n_shards)
        recovered = {
            global_index(sid, local, n_shards): obj
            for sid, shard in enumerate(shards)
            for local, obj in enumerate(shard)
        }
        assert recovered == {i: i for i in items}

    def test_resolve_n_shards(self):
        model = BUBBLE(EuclideanDistance(), n_jobs=3)
        assert resolve_n_shards(model) == 3
        model = BUBBLE(EuclideanDistance(), n_jobs=3, n_shards=5)
        assert resolve_n_shards(model) == 5

    def test_band_bounds_partition_rows(self):
        for n, n_bands in [(5, 2), (64, 8), (97, 16), (3, 8)]:
            bounds = _band_bounds(n, n_bands)
            assert bounds[0][0] == 0 and bounds[-1][1] == n
            for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                assert stop == start


class TestDeterminism:
    def test_inline_build_is_reproducible(self):
        points = make_blobs(n=150)
        sigs, calls = [], []
        for _ in range(2):
            model = BUBBLE(
                EuclideanDistance(), max_nodes=12, seed=7, n_shards=3
            ).fit(points)
            sigs.append(tree_signature(model.tree_))
            calls.append(model.metric.n_calls)
        assert sigs[0] == sigs[1]
        assert calls[0] == calls[1]

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_shards=st.sampled_from([2, 3, 4]),
        data_seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=15, deadline=None)
    def test_merged_tree_is_pure_function_of_seed_and_shards(
        self, seed, n_shards, data_seed
    ):
        points = make_blobs(n=60, seed=data_seed)
        runs = [
            BUBBLE(
                EuclideanDistance(), max_nodes=10, seed=seed, n_shards=n_shards
            ).fit(points)
            for _ in range(2)
        ]
        assert tree_signature(runs[0].tree_) == tree_signature(runs[1].tree_)
        assert runs[0].metric.n_calls == runs[1].metric.n_calls
        total = sum(s.n for s in runs[0].subclusters_)
        assert total == len(points)

    def test_n_jobs_never_changes_the_tree(self):
        # The executor is invisible: 1 (inline), 2, and 4 worker processes
        # over the same 4 logical shards build byte-identical trees with
        # identical NCD.
        points = make_blobs(n=120)
        runs = {
            jobs: BUBBLE(
                EuclideanDistance(), max_nodes=12, seed=11, n_jobs=jobs, n_shards=4
            ).fit(points)
            for jobs in (1, 2, 4)
        }
        inline = runs[1]
        for jobs in (2, 4):
            assert tree_signature(inline.tree_) == tree_signature(runs[jobs].tree_)
            assert inline.metric.n_calls == runs[jobs].metric.n_calls
            assert len(runs[jobs].shard_summaries_) == 4

    def test_merged_tree_is_audit_clean(self, audit):
        points = make_blobs(n=150)
        model = BUBBLE(
            EuclideanDistance(), max_nodes=12, seed=5, n_shards=3
        ).fit(points)
        report = audit(model.tree_)
        assert not report.errors


class TestMergeEfficiency:
    def test_merge_cheaper_than_rescanning_raw_points(self):
        """The merge re-inserts condensed leaf CF*s — far fewer items than
        the raw stream — so its NCD must undercut a fresh sequential scan."""
        points = make_blobs(n=800, seed=9)
        tracer = Tracer()
        model = BUBBLE(
            EuclideanDistance(), max_nodes=12, seed=2, n_shards=4, tracer=tracer
        ).fit(points)
        merge_ncd = tracer.span_aggregates()["merge"]["ncd"]
        n_merged = sum(s.n for s in model.subclusters_)
        assert n_merged == len(points)
        assert len(model.subclusters_) < len(points) // 4

        rescan = BUBBLE(EuclideanDistance(), max_nodes=12, seed=2).fit(points)
        assert merge_ncd < rescan.metric.n_calls


class TestAccounting:
    def test_ledger_partitions_total_ncd(self):
        points = make_blobs(n=150)
        tracer = Tracer()
        metric = EuclideanDistance()
        BUBBLE(metric, max_nodes=12, seed=1, n_shards=3, tracer=tracer).fit(points)
        by_site = tracer.calls_by_site
        assert sum(by_site.values()) == metric.n_calls
        assert tracer.ledger.total == metric.n_calls

    def test_shard_ingest_and_merge_spans_present(self):
        points = make_blobs(n=150)
        tracer = Tracer()
        BUBBLE(
            EuclideanDistance(), max_nodes=12, seed=1, n_shards=3, tracer=tracer
        ).fit(points)
        aggregates = tracer.span_aggregates()
        assert "shard-ingest" in aggregates
        assert "merge" in aggregates
        assert aggregates["shard-ingest"]["ncd"] > 0

    def test_merged_report_totals(self):
        points = make_blobs(n=150)
        metric = EuclideanDistance()
        model = BUBBLE(metric, max_nodes=12, seed=1, n_shards=3).fit(points)
        report = model.ingest_report_
        assert report.n_seen == len(points)
        assert report.n_inserted == len(points)
        assert report.n_quarantined == 0
        assert report.n_distance_calls == metric.n_calls
        assert report.elapsed_seconds > 0

    def test_merge_absorption_preserves_object_count(self):
        # Regression: a shard feature absorbed into an earlier one from the
        # same merge batch mutates that entry's n in place; the merge must
        # not double-count the absorbed objects in tree.n_objects.
        from repro.datasets.vector import make_cell_dataset

        ds = make_cell_dataset(dim=10, n_clusters=50, n_points=600, seed=50)
        model = BUBBLE(
            EuclideanDistance(), max_nodes=10, seed=0, n_shards=4
        ).fit(list(ds.points))
        tree = model.tree_
        assert tree.n_objects == 600
        assert sum(f.n for f in tree.leaf_features()) == 600

    def test_shard_summaries(self):
        points = make_blobs(n=150)
        model = BUBBLE(
            EuclideanDistance(), max_nodes=12, seed=1, n_shards=3
        ).fit(points)
        summaries = model.shard_summaries_
        assert [s["shard_id"] for s in summaries] == [0, 1, 2]
        assert sum(s["n_objects"] for s in summaries) == len(points)
        assert all(s["n_calls"] > 0 for s in summaries)
        assert all(s["peak_rss_kb"] > 0 for s in summaries)


class TestQuarantineMerge:
    def test_global_indices_restored_in_scan_order(self):
        points = make_blobs(n=80, seed=4)
        bad_positions = [5, 17, 42]
        for position in bad_positions:
            points[position] = np.array([1e6, 1e6])
        metric = FlakyMetric(EuclideanDistance(), failure_rate=0.0, poison=poisoned)
        model = BUBBLE(metric, max_nodes=12, seed=3, n_shards=3).fit(
            points, on_error="quarantine"
        )
        indices = [record.index for record in model.quarantine_.records]
        assert indices == bad_positions
        assert model.ingest_report_.n_quarantined == len(bad_positions)
        assert model.ingest_report_.n_inserted == len(points) - len(bad_positions)

    def test_quarantine_limit_enforced_per_shard(self):
        from repro.exceptions import QuarantineOverflowError

        points = make_blobs(n=80, seed=4)
        for position in (4, 6, 8, 10):  # all land in shard 0 of 2
            points[position] = np.array([1e6, 1e6])
        metric = FlakyMetric(EuclideanDistance(), failure_rate=0.0, poison=poisoned)
        model = BUBBLE(metric, max_nodes=12, seed=3, n_shards=2)
        with pytest.raises(QuarantineOverflowError):
            model.fit(points, on_error="quarantine", max_quarantine=2)


class TestBudget:
    def test_budget_too_small_to_shard(self):
        metric = GuardedMetric(EuclideanDistance(), max_calls=3)
        model = BUBBLE(metric, max_nodes=12, seed=3, n_shards=4)
        with pytest.raises(MetricBudgetExceededError, match="too small to shard"):
            model.fit(make_blobs(n=40))

    def test_generous_budget_respected_globally(self):
        points = make_blobs(n=100)
        metric = GuardedMetric(EuclideanDistance(), max_calls=500_000)
        model = BUBBLE(metric, max_nodes=12, seed=3, n_shards=3).fit(points)
        assert model.ingest_report_.n_distance_calls == metric.n_calls
        assert metric.n_calls <= 500_000


class TestValidation:
    def test_checkpoint_path_must_not_be_a_file(self, tmp_path):
        target = tmp_path / "ck.pkl"
        target.write_bytes(b"not a directory")
        model = BUBBLE(EuclideanDistance(), n_shards=2)
        with pytest.raises(ParameterError, match="existing file"):
            model.fit(make_blobs(n=20), checkpoint_path=target)

    def test_generator_seed_rejected(self):
        model = BUBBLE(
            EuclideanDistance(), seed=np.random.default_rng(0), n_shards=2
        )
        with pytest.raises(ParameterError, match="Generator"):
            model.fit(make_blobs(n=20))

    def test_unpicklable_metric_named(self):
        from repro.metrics import FunctionDistance

        metric = FunctionDistance(lambda a, b: float(abs(a - b)))
        model = BUBBLE(metric, n_shards=2)
        with pytest.raises(ParameterError, match="pickle"):
            model.fit([float(i) for i in range(20)])

    def test_empty_input_rejected(self):
        model = BUBBLE(EuclideanDistance(), n_shards=2)
        with pytest.raises(EmptyDatasetError):
            model.fit([])

    def test_parallel_fit_validates_on_error(self):
        model = BUBBLE(EuclideanDistance(), n_shards=2)
        with pytest.raises(ParameterError, match="on_error"):
            parallel_fit(model, make_blobs(n=10), on_error="ignore")


class TestParallelMatrix:
    def test_small_input_delegates_sequential(self):
        metric = EuclideanDistance()
        objects = make_blobs(n=10)
        matrix = pairwise_matrix(metric, objects, n_jobs=4)
        np.testing.assert_allclose(matrix, EuclideanDistance().pairwise(objects))
        assert metric.n_calls == 10 * 9 // 2

    def test_pool_matches_sequential_values_and_ncd(self):
        objects = make_blobs(n=70, seed=8)
        sequential = EuclideanDistance()
        expected = sequential.pairwise(objects)
        metric = EuclideanDistance()
        matrix = pairwise_matrix(metric, objects, n_jobs=2)
        np.testing.assert_allclose(matrix, expected)
        assert metric.n_calls == sequential.n_calls == 70 * 69 // 2

    def test_string_metric_through_cache(self):
        words = [f"word{i:03d}" for i in range(30)]
        metric = CachedDistance(EditDistance())
        matrix = pairwise_matrix(metric, words, n_jobs=1)
        assert matrix.shape == (30, 30)
        assert np.all(matrix == matrix.T)


class TestShardedCheckpoint:
    def test_checkpoint_dir_holds_manifest_and_shard_files(self, tmp_path):
        from repro.persistence import (
            is_sharded_checkpoint,
            load_shard_manifest,
            shard_checkpoint_file,
        )

        ckdir = tmp_path / "ck"
        BUBBLE(EuclideanDistance(), max_nodes=12, seed=5, n_shards=3).fit(
            make_blobs(n=90), checkpoint_path=ckdir, checkpoint_every=10
        )
        assert is_sharded_checkpoint(ckdir)
        manifest = load_shard_manifest(ckdir)
        assert manifest["n_shards"] == 3
        assert manifest["algorithm"] == "BUBBLE"
        assert manifest["seed"] == 5
        for shard_id in range(3):
            assert (tmp_path / "ck" / f"shard-{shard_id:04d}.ckpt").exists()
            assert shard_checkpoint_file(ckdir, shard_id).endswith(
                f"shard-{shard_id:04d}.ckpt"
            )

    def test_resume_completed_checkpoint_is_equivalent(self, tmp_path):
        points = make_blobs(n=90)
        ckdir = tmp_path / "ck"
        clean = BUBBLE(EuclideanDistance(), max_nodes=12, seed=5, n_shards=3).fit(
            points, checkpoint_path=ckdir, checkpoint_every=10
        )
        resumed = BUBBLE(EuclideanDistance(), max_nodes=12, seed=5, n_shards=3).fit(
            points, resume_from=ckdir
        )
        assert tree_signature(clean.tree_) == tree_signature(resumed.tree_)
        assert resumed.ingest_report_.shards_resumed >= 1

    def test_resume_rejects_different_n_shards(self, tmp_path):
        from repro.exceptions import CheckpointError

        ckdir = tmp_path / "ck"
        BUBBLE(EuclideanDistance(), max_nodes=12, seed=5, n_shards=3).fit(
            make_blobs(n=60), checkpoint_path=ckdir
        )
        model = BUBBLE(EuclideanDistance(), max_nodes=12, seed=5, n_shards=2)
        with pytest.raises(CheckpointError, match="n_shards"):
            model.fit(make_blobs(n=60), resume_from=ckdir)

    def test_resume_rejects_different_seed(self, tmp_path):
        from repro.exceptions import CheckpointError

        ckdir = tmp_path / "ck"
        BUBBLE(EuclideanDistance(), max_nodes=12, seed=5, n_shards=2).fit(
            make_blobs(n=60), checkpoint_path=ckdir
        )
        model = BUBBLE(EuclideanDistance(), max_nodes=12, seed=6, n_shards=2)
        with pytest.raises(CheckpointError, match="seed"):
            model.fit(make_blobs(n=60), resume_from=ckdir)

    def test_resume_rejects_different_algorithm(self, tmp_path):
        from repro.core.preclusterer import BUBBLEFM
        from repro.exceptions import CheckpointError

        ckdir = tmp_path / "ck"
        BUBBLE(EuclideanDistance(), max_nodes=12, seed=5, n_shards=2).fit(
            make_blobs(n=60), checkpoint_path=ckdir
        )
        model = BUBBLEFM(EuclideanDistance(), max_nodes=12, seed=5, n_shards=2)
        with pytest.raises(CheckpointError, match="BUBBLE"):
            model.fit(make_blobs(n=60), resume_from=ckdir)

    def test_sequential_file_rejected_as_sharded_resume(self, tmp_path):
        from repro.exceptions import CheckpointError

        ckfile = tmp_path / "sequential.ckpt"
        BUBBLE(EuclideanDistance(), max_nodes=12, seed=5).fit(
            make_blobs(n=60), checkpoint_path=ckfile, checkpoint_every=10
        )
        model = BUBBLE(EuclideanDistance(), max_nodes=12, seed=5, n_shards=2)
        with pytest.raises(CheckpointError, match="sequential checkpoint file"):
            model.fit(make_blobs(n=60), resume_from=ckfile)

    def test_sharded_dir_rejected_as_sequential_resume(self, tmp_path):
        from repro.exceptions import CheckpointError

        ckdir = tmp_path / "ck"
        BUBBLE(EuclideanDistance(), max_nodes=12, seed=5, n_shards=2).fit(
            make_blobs(n=60), checkpoint_path=ckdir
        )
        model = BUBBLE(EuclideanDistance(), max_nodes=12, seed=5)
        with pytest.raises(CheckpointError, match="sharded checkpoint directory"):
            model.fit(make_blobs(n=60), resume_from=ckdir)


class TestGlobalQuarantine:
    def test_cap_enforced_across_shards_after_merge(self):
        # Two poisons per shard, each under the cap of 3 locally; the
        # merged total of 4 must still trip the global circuit breaker.
        from repro.exceptions import QuarantineOverflowError

        points = make_blobs(n=80, seed=4)
        for position in (4, 5, 6, 7):  # 2 land in each shard of 2
            points[position] = np.array([1e6, 1e6])
        metric = FlakyMetric(EuclideanDistance(), failure_rate=0.0, poison=poisoned)
        model = BUBBLE(metric, max_nodes=12, seed=3, n_shards=2)
        with pytest.raises(QuarantineOverflowError, match="merged quarantine"):
            model.fit(points, on_error="quarantine", max_quarantine=3)
        assert len(model.quarantine_) == 4
        assert model.ingest_report_ is not None
