"""Unit tests for the BUBBLE / BUBBLE-FM drivers."""

import numpy as np
import pytest

from repro import BUBBLE, BUBBLEFM
from repro.exceptions import EmptyDatasetError, NotFittedError
from repro.metrics import EditDistance, EuclideanDistance


class TestFit:
    def test_empty_dataset_raises(self, euclidean):
        with pytest.raises(EmptyDatasetError):
            BUBBLE(euclidean).fit([])

    def test_not_fitted_access_raises(self, euclidean):
        model = BUBBLE(euclidean)
        with pytest.raises(NotFittedError):
            _ = model.subclusters_

    def test_accepts_generator_single_scan(self, euclidean):
        def stream():
            rng = np.random.default_rng(0)
            for _ in range(100):
                yield rng.normal(size=2)

        model = BUBBLE(euclidean, max_nodes=10, seed=0).fit(stream())
        assert model.tree_.n_objects == 100

    def test_subcluster_population_conserved(self, euclidean, blob_data):
        points, _, _ = blob_data
        model = BUBBLE(euclidean, max_nodes=15, seed=0).fit(points)
        assert sum(s.n for s in model.subclusters_) == len(points)

    def test_recovers_separated_blobs(self, euclidean, blob_data):
        points, labels, centers = blob_data
        model = BUBBLE(euclidean, max_nodes=10, seed=0).fit(points)
        # Every true center must have a discovered clustroid nearby.
        clustroids = np.asarray(model.clustroids_)
        for c in centers:
            dmin = np.min(np.linalg.norm(clustroids - c, axis=1))
            assert dmin < 1.5

    def test_bubble_fm_recovers_separated_blobs(self, blob_data):
        points, labels, centers = blob_data
        model = BUBBLEFM(EuclideanDistance(), max_nodes=10, image_dim=2, seed=0).fit(points)
        clustroids = np.asarray(model.clustroids_)
        for c in centers:
            assert np.min(np.linalg.norm(clustroids - c, axis=1)) < 1.5


class TestAssign:
    def test_labels_shape_and_range(self, euclidean, blob_data):
        points, _, _ = blob_data
        model = BUBBLE(euclidean, max_nodes=10, seed=0).fit(points)
        labels = model.assign(points)
        assert labels.shape == (len(points),)
        assert labels.max() < model.n_subclusters_
        assert labels.min() >= 0

    def test_assign_puts_objects_on_nearest_clustroid(self, euclidean):
        model = BUBBLE(euclidean, threshold=0.1, seed=0).fit(
            [np.array([0.0, 0.0]), np.array([10.0, 0.0])]
        )
        labels = model.assign([np.array([1.0, 0.0]), np.array([9.0, 0.0])])
        clustroids = np.asarray(model.clustroids_)
        assert clustroids[labels[0]][0] == pytest.approx(0.0)
        assert clustroids[labels[1]][0] == pytest.approx(10.0)


class TestDiagnostics:
    def test_ncd_counter_exposed(self, euclidean, blob_data):
        points, _, _ = blob_data
        model = BUBBLE(euclidean, max_nodes=10, seed=0).fit(points)
        assert model.n_distance_calls_ == euclidean.n_calls > 0

    def test_bubble_fm_fewer_calls_than_bubble_on_deep_tree(self):
        rng = np.random.default_rng(7)
        # Enough spread-out points to force a multi-level tree.
        points = list(rng.uniform(0, 1000, size=(1500, 2)))
        m1, m2 = EuclideanDistance(), EuclideanDistance()
        BUBBLE(m1, branching_factor=8, sample_size=40, max_nodes=40, seed=0).fit(points)
        BUBBLEFM(
            m2, branching_factor=8, sample_size=40, max_nodes=40, image_dim=2, seed=0
        ).fit(points)
        assert m2.n_calls < m1.n_calls

    def test_subcluster_representatives_included(self, euclidean, blob_data):
        points, _, _ = blob_data
        model = BUBBLE(euclidean, max_nodes=10, seed=0).fit(points)
        for s in model.subclusters_:
            assert 1 <= len(s.representatives) <= 10


class TestStrings:
    def test_bubble_on_strings(self):
        strings = ["cat", "cart", "carts", "dog", "dogs", "dig"] * 5
        model = BUBBLE(EditDistance(), threshold=1.0, seed=0).fit(strings)
        assert model.n_subclusters_ >= 2
        assert all(isinstance(s.clustroid, str) for s in model.subclusters_)

    def test_bubble_fm_on_strings(self):
        strings = ["cat", "cart", "carts", "dog", "dogs", "dig"] * 5
        model = BUBBLEFM(EditDistance(), threshold=1.0, image_dim=2, seed=0).fit(strings)
        assert model.n_subclusters_ >= 2


class TestDeterminism:
    def test_same_seed_same_result(self, blob_data):
        points, _, _ = blob_data
        runs = []
        for _ in range(2):
            model = BUBBLE(EuclideanDistance(), max_nodes=10, seed=42).fit(points)
            runs.append(
                sorted((s.n, tuple(np.round(np.asarray(s.clustroid), 6))) for s in model.subclusters_)
            )
        assert runs[0] == runs[1]
