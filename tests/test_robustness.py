"""Fault-injection suite for the robustness layer: guarded metrics,
quarantine-and-continue scans, budgets, and deterministic test doubles."""

import numpy as np
import pytest

from repro import BUBBLE, EuclideanDistance
from repro.exceptions import (
    DeadlineExceededError,
    EmptyDatasetError,
    MetricBudgetExceededError,
    MetricValueError,
    ParameterError,
    QuarantineOverflowError,
)
from repro.metrics import FunctionDistance
from repro.robustness import (
    FaultInjector,
    FlakyMetric,
    GuardedMetric,
    InjectedFaultError,
    Quarantine,
)

NOSLEEP = {"sleep": lambda s: None}


def euclid(a, b):
    return float(np.linalg.norm(np.asarray(a) - np.asarray(b)))


class TestGuardedMetricValidation:
    def test_passthrough_and_counting(self):
        guard = GuardedMetric(FunctionDistance(euclid))
        assert guard.distance(np.zeros(2), np.array([3.0, 4.0])) == 5.0
        assert guard.n_calls == 1
        assert guard.n_faults == 0

    def test_nan_raises_metric_value_error(self):
        guard = GuardedMetric(FunctionDistance(lambda a, b: float("nan")))
        with pytest.raises(MetricValueError, match="non-finite"):
            guard.distance(0, 1)
        assert guard.n_faults == 1
        assert guard.faults[0].kind == "invalid-value"

    def test_negative_raises(self):
        guard = GuardedMetric(FunctionDistance(lambda a, b: -2.0))
        with pytest.raises(MetricValueError, match="negative"):
            guard.distance(0, 1)

    def test_tiny_negative_clamped_silently(self):
        guard = GuardedMetric(FunctionDistance(lambda a, b: -1e-12))
        assert guard.distance(0, 1) == 0.0
        assert guard.n_faults == 0

    def test_exception_propagates_under_raise_policy(self):
        def boom(a, b):
            raise OSError("backend down")

        guard = GuardedMetric(FunctionDistance(boom))
        with pytest.raises(OSError, match="backend down"):
            guard.distance(0, 1)
        assert guard.faults[0].kind == "exception"


class TestRetryPolicy:
    def test_transient_failure_retried_to_success(self):
        calls = {"n": 0}

        def flaky(a, b):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise TimeoutError("transient")
            return 1.0

        guard = GuardedMetric(
            FunctionDistance(flaky), on_fault="retry", max_retries=3, seed=0, **NOSLEEP
        )
        assert guard.distance(0, 1) == 1.0
        assert guard.n_retries == 2
        assert guard.n_faults == 0  # recovered, nothing to report

    def test_exhausted_retries_raise_original(self):
        def always(a, b):
            raise TimeoutError("still down")

        guard = GuardedMetric(
            FunctionDistance(always), on_fault="retry", max_retries=2, seed=0, **NOSLEEP
        )
        with pytest.raises(TimeoutError):
            guard.distance(0, 1)
        assert guard.n_retries == 2
        assert guard.faults[0].attempts == 3

    def test_invalid_values_also_retried(self):
        calls = {"n": 0}

        def heals(a, b):
            calls["n"] += 1
            return float("nan") if calls["n"] == 1 else 2.0

        guard = GuardedMetric(
            FunctionDistance(heals), on_fault="retry", max_retries=1, seed=0, **NOSLEEP
        )
        assert guard.distance(0, 1) == 2.0
        assert guard.n_retries == 1

    def test_backoff_sleeps_grow(self):
        sleeps = []

        def always(a, b):
            raise ValueError("no")

        guard = GuardedMetric(
            FunctionDistance(always),
            on_fault="retry",
            max_retries=3,
            backoff=0.1,
            backoff_multiplier=2.0,
            jitter=0.0,
            seed=0,
            sleep=sleeps.append,
        )
        with pytest.raises(ValueError):
            guard.distance(0, 1)
        assert sleeps == pytest.approx([0.1, 0.2, 0.4])


class TestSubstitutePolicy:
    def test_substitute_on_exception(self):
        def boom(a, b):
            raise RuntimeError("gone")

        guard = GuardedMetric(
            FunctionDistance(boom), on_fault="substitute", substitute_value=7.5
        )
        assert guard.distance(0, 1) == 7.5
        assert guard.n_substitutions == 1
        assert guard.faults[0].substituted

    def test_substitute_on_invalid_value(self):
        guard = GuardedMetric(
            FunctionDistance(lambda a, b: float("inf")),
            on_fault="substitute",
            substitute_value=0.0,
        )
        assert guard.distance(0, 1) == 0.0
        assert guard.n_faults == 1

    def test_substitute_requires_value(self):
        with pytest.raises(ParameterError, match="substitute_value"):
            GuardedMetric(FunctionDistance(euclid), on_fault="substitute")

    def test_substitute_value_must_be_valid_distance(self):
        with pytest.raises(ParameterError):
            GuardedMetric(
                FunctionDistance(euclid),
                on_fault="substitute",
                substitute_value=float("nan"),
            )


class TestSymmetryCheck:
    @staticmethod
    def asymmetric(a, b):
        return 1.0 if a < b else 2.0

    def test_asymmetry_detected_and_raised(self):
        guard = GuardedMetric(
            FunctionDistance(self.asymmetric), symmetry_check_rate=1.0, seed=0
        )
        with pytest.raises(MetricValueError, match="asymmetric"):
            guard.distance(0, 1)
        assert guard.n_symmetry_checks == 1
        assert guard.n_symmetry_failures == 1

    def test_asymmetry_substituted_with_mean(self):
        guard = GuardedMetric(
            FunctionDistance(self.asymmetric),
            on_fault="substitute",
            substitute_value=0.0,
            symmetry_check_rate=1.0,
            seed=0,
        )
        assert guard.distance(0, 1) == 1.5
        assert guard.faults[0].kind == "asymmetry"

    def test_spot_check_costs_one_extra_call(self):
        guard = GuardedMetric(
            FunctionDistance(euclid), symmetry_check_rate=1.0, seed=0
        )
        guard.distance(np.zeros(1), np.ones(1))
        assert guard.n_calls == 2

    def test_symmetric_metric_passes(self):
        guard = GuardedMetric(
            FunctionDistance(euclid), symmetry_check_rate=1.0, seed=0
        )
        for i in range(10):
            guard.distance(np.array([float(i)]), np.array([2.0 * i]))
        assert guard.n_symmetry_failures == 0


class TestBudgets:
    def test_call_budget_enforced_before_evaluation(self):
        guard = GuardedMetric(FunctionDistance(euclid), max_calls=3)
        a, b = np.zeros(1), np.ones(1)
        for _ in range(3):
            guard.distance(a, b)
        with pytest.raises(MetricBudgetExceededError):
            guard.distance(a, b)
        assert guard.n_calls == 3  # the overrunning call was never made
        assert guard.remaining_calls == 0

    def test_batch_over_budget_spends_remainder_then_aborts(self):
        # A gather larger than the remaining budget falls back to guarded
        # pair-by-pair evaluation: the remainder is spent, then the first
        # over-budget pair aborts, so the ledger charges exactly the
        # evaluations that happened.
        guard = GuardedMetric(FunctionDistance(euclid), max_calls=10)
        with pytest.raises(MetricBudgetExceededError):
            guard.one_to_many(np.zeros(1), [np.ones(1)] * 11)
        assert guard.n_calls == 10
        assert guard.remaining_calls == 0

    def test_batch_within_budget_uses_one_gather(self):
        guard = GuardedMetric(FunctionDistance(euclid), max_calls=10)
        out = guard.one_to_many(np.zeros(1), [np.ones(1)] * 10)
        assert out.shape == (10,)
        assert guard.n_calls == 10

    def test_pairwise_over_budget_charges_completed_pairs(self):
        guard = GuardedMetric(FunctionDistance(euclid), max_calls=4)
        pts = [np.array([float(i)]) for i in range(4)]  # 6 pairs > budget 4
        with pytest.raises(MetricBudgetExceededError):
            guard.pairwise(pts)
        assert guard.n_calls == 4

    def test_cross_over_budget_charges_completed_pairs(self):
        guard = GuardedMetric(FunctionDistance(euclid), max_calls=5)
        a = [np.array([float(i)]) for i in range(3)]
        b = [np.array([float(j)]) for j in range(3)]  # 9 pairs > budget 5
        with pytest.raises(MetricBudgetExceededError):
            guard.cross(a, b)
        assert guard.n_calls == 5

    def test_gather_deadline_checked_mid_batch(self):
        # The deadline expires while the slow path walks the batch; only
        # the pairs evaluated before expiry are charged. A broken batch
        # kernel pins the slow path.
        t = {"now": 0.0}

        def ticking(a, b):
            t["now"] += 3.0
            return euclid(a, b)

        class BrokenBatch(FunctionDistance):
            def _one_to_many(self, obj, objects):
                raise RuntimeError("batch kernel down")

        guard = GuardedMetric(
            BrokenBatch(ticking),
            deadline_seconds=10.0,
            clock=lambda: t["now"],
        )
        with pytest.raises(DeadlineExceededError):
            guard.one_to_many(np.zeros(1), [np.ones(1)] * 6)
        # Four evaluations tick the clock to 12s; the fifth pair's deadline
        # gate fires before evaluating.
        assert guard.n_calls == 4

    def test_deadline_with_injected_clock(self):
        t = {"now": 0.0}
        guard = GuardedMetric(
            FunctionDistance(euclid), deadline_seconds=10.0, clock=lambda: t["now"]
        )
        a, b = np.zeros(1), np.ones(1)
        guard.distance(a, b)
        t["now"] = 11.0
        with pytest.raises(DeadlineExceededError):
            guard.distance(a, b)

    def test_reset_budget_reopens_the_window(self):
        guard = GuardedMetric(FunctionDistance(euclid), max_calls=1)
        a, b = np.zeros(1), np.ones(1)
        guard.distance(a, b)
        guard.reset_budget()
        assert guard.distance(a, b) == 1.0


class TestBatchGuarding:
    def test_one_to_many_fallback_substitutes_bad_entries(self):
        def mostly(a, b):
            if b == 3:
                return float("nan")
            return abs(a - b)

        guard = GuardedMetric(
            FunctionDistance(mostly), on_fault="substitute", substitute_value=99.0
        )
        out = guard.one_to_many(0, [1, 2, 3, 4])
        np.testing.assert_allclose(out, [1.0, 2.0, 99.0, 4.0])
        assert guard.n_calls == 4

    def test_pairwise_fallback_stays_symmetric(self):
        def broken(a, b):
            if {a, b} == {0, 2}:
                raise RuntimeError("bad pair")
            return abs(a - b)

        guard = GuardedMetric(
            FunctionDistance(broken), on_fault="substitute", substitute_value=5.0
        )
        out = guard.pairwise([0, 1, 2])
        np.testing.assert_allclose(out, out.T)
        assert out[0, 2] == 5.0

    def test_vectorized_inner_fast_path(self, euclidean):
        guard = GuardedMetric(euclidean)
        pts = [np.array([float(i), 0.0]) for i in range(5)]
        out = guard.one_to_many(pts[0], pts)
        np.testing.assert_allclose(out, [0, 1, 2, 3, 4])
        assert guard.n_calls == 5


class TestFaultInjector:
    def test_deterministic_stream(self):
        a = FaultInjector(failure_rate=0.3, seed=42)
        b = FaultInjector(failure_rate=0.3, seed=42)
        seq_a = [a.should_fail() for _ in range(200)]
        seq_b = [b.should_fail() for _ in range(200)]
        assert seq_a == seq_b
        assert a.n_injected == sum(seq_a)

    def test_streaks_fail_consecutively(self):
        inj = FaultInjector(failure_rate=0.2, seed=0, fail_streak=3)
        seq = [inj.should_fail() for _ in range(300)]
        runs, current = [], 0
        for fail in seq:
            if fail:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert runs
        assert all(r >= 3 for r in runs)

    def test_start_after_grace_period(self):
        inj = FaultInjector(failure_rate=1.0, seed=0, start_after=5)
        assert [inj.should_fail() for _ in range(7)] == [False] * 5 + [True] * 2

    def test_flaky_metric_modes(self):
        inner = FunctionDistance(euclid)
        raising = FlakyMetric(inner, failure_rate=1.0, seed=0, mode="raise")
        with pytest.raises(InjectedFaultError):
            raising.distance(np.zeros(1), np.ones(1))
        nan = FlakyMetric(FunctionDistance(euclid), failure_rate=1.0, seed=0, mode="nan")
        assert np.isnan(nan.distance(np.zeros(1), np.ones(1)))

    def test_poisoned_objects_always_fail(self):
        metric = FlakyMetric(
            FunctionDistance(lambda a, b: abs(a - b)),
            failure_rate=0.0,
            poison=lambda o: o == 13,
        )
        assert metric.distance(1, 2) == 1.0
        with pytest.raises(InjectedFaultError, match="poisoned"):
            metric.distance(1, 13)


class TestQuarantineBuffer:
    def test_overflow_raises(self):
        q = Quarantine(max_size=2)
        q.add(0, "a", ValueError("x"))
        q.add(1, "b", ValueError("y"))
        with pytest.raises(QuarantineOverflowError):
            q.add(2, "c", ValueError("z"))
        assert len(q) == 2

    def test_counts_by_error(self):
        q = Quarantine()
        q.add(0, "a", ValueError("x"))
        q.add(1, "b", TypeError("y"))
        q.add(2, "c", ValueError("z"))
        assert q.counts_by_error() == {"ValueError": 2, "TypeError": 1}

    def test_state_round_trip(self):
        q = Quarantine(max_size=10)
        q.add(3, [1.0, 2.0], RuntimeError("boom"))
        restored = Quarantine.from_state(q.get_state())
        assert restored.max_size == 10
        assert restored.records[0].index == 3
        assert restored.records[0].obj == [1.0, 2.0]
        assert restored.records[0].error_type == "RuntimeError"


class TestQuarantineScan:
    """fit(on_error="quarantine"): the scan survives bad objects."""

    def test_poison_objects_quarantined_with_exact_counts(self, rng):
        points = [float(x) for x in rng.uniform(0, 100, size=200)]
        poison_positions = {17, 50, 99, 150, 151}
        objects = [
            "poison" if i in poison_positions else points[i] for i in range(200)
        ]
        metric = FlakyMetric(
            FunctionDistance(lambda a, b: abs(a - b)),
            failure_rate=0.0,
            poison=lambda o: o == "poison",
        )
        model = BUBBLE(metric, threshold=5.0, seed=0)
        model.fit(objects, on_error="quarantine")
        report = model.ingest_report_
        assert report.n_seen == 200
        assert report.n_quarantined == len(poison_positions)
        assert report.n_inserted == 200 - len(poison_positions)
        assert model.tree_.n_objects == report.n_inserted
        assert {r.index for r in model.quarantine_} == poison_positions
        assert all(r.obj == "poison" for r in model.quarantine_)
        assert model.quarantine_.counts_by_error() == {
            "InjectedFaultError": len(poison_positions)
        }

    def test_flaky_metric_five_percent_with_retry_completes(self, rng):
        """The acceptance scenario: 5% of calls fail transiently; the
        guarded retry policy absorbs them and the scan completes with exact
        accounting, matching a fault-free run's clustering."""
        data = list(rng.normal(size=(400, 2)))
        flaky = FlakyMetric(EuclideanDistance(), failure_rate=0.05, seed=11)
        guard = GuardedMetric(
            flaky, on_fault="retry", max_retries=6, seed=7, **NOSLEEP
        )
        model = BUBBLE(guard, max_nodes=20, seed=1)
        model.fit(data, on_error="quarantine")
        report = model.ingest_report_
        assert report.n_seen == 400
        assert report.n_inserted == 400
        assert report.n_quarantined == 0
        assert report.n_retries == guard.n_retries > 0
        assert report.n_distance_calls == guard.n_calls
        # Retries are invisible to the clustering: same result as no faults.
        clean = BUBBLE(EuclideanDistance(), max_nodes=20, seed=1).fit(data)
        sig = lambda m: sorted((s.n, round(s.radius, 9)) for s in m.subclusters_)
        assert sig(model) == sig(clean)

    def test_quarantine_overflow_aborts_scan(self, rng):
        objects = ["bad"] * 50 + [1.0, 2.0]
        metric = FlakyMetric(
            FunctionDistance(lambda a, b: abs(a - b)),
            failure_rate=0.0,
            poison=lambda o: o == "bad",
        )
        model = BUBBLE(metric, threshold=5.0, seed=0)
        model.partial_fit([0.0])  # healthy root so poison is measured
        with pytest.raises(QuarantineOverflowError):
            model.partial_fit(objects, on_error="quarantine", max_quarantine=10)
        assert len(model.quarantine_) == 10

    def test_budget_exhaustion_not_quarantined(self, rng):
        data = list(rng.normal(size=(300, 2)))
        guard = GuardedMetric(EuclideanDistance(), max_calls=50)
        model = BUBBLE(guard, max_nodes=10, seed=0)
        with pytest.raises(MetricBudgetExceededError):
            model.fit(data, on_error="quarantine")
        assert guard.n_calls <= 50

    def test_total_metric_failure_quarantines_all_but_first(self):
        metric = FlakyMetric(
            FunctionDistance(lambda a, b: abs(a - b)),
            failure_rate=1.0,
            mode="raise",
        )
        model = BUBBLE(metric, threshold=1.0, seed=0)
        # First object builds the root without distance calls; feed enough
        # that everything else fails, then check the scan reports honestly.
        model.fit([1.0, 2.0, 3.0], on_error="quarantine")
        assert model.ingest_report_.n_inserted == 1
        assert model.ingest_report_.n_quarantined == 2

    def test_invalid_on_error_rejected(self, euclidean):
        with pytest.raises(ParameterError, match="on_error"):
            BUBBLE(euclidean, seed=0).fit([np.zeros(2)], on_error="ignore")

    def test_report_format_mentions_quarantine(self):
        from repro.robustness import IngestReport

        report = IngestReport(n_seen=10, n_inserted=8, n_quarantined=2)
        text = report.format()
        assert "quarantined: 2" in text
        assert "seen:        10" in text


class TestEmptyDataset:
    def test_empty_fit_still_raises(self, euclidean):
        with pytest.raises(EmptyDatasetError):
            BUBBLE(euclidean, seed=0).fit([])
