"""Property-based tests: every index backend is bit-identical to brute force.

The :class:`~repro.index.MetricIndex` exactness contract (ordering by
``(distance, index)``, strict-inequality pruning, per-query memoization)
must make ``nearest``/``within`` answers indistinguishable across the
brute, m-tree, vp-tree, and cf-tree backends — indices *and* distances,
including tie resolution — while never spending more counted calls per
query than the linear scan, and while keeping the per-site call ledger
an exact partition of the total even with query traffic in the mix.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.preclusterer import BUBBLE
from repro.index import CFTreeIndex, make_index
from repro.metrics import EditDistance, EuclideanDistance
from repro.metrics.base import CallLedger, activate_ledger, deactivate_ledger
from repro.metrics.cache import CachedDistance
from repro.robustness import GuardedMetric

point_lists = st.lists(
    st.tuples(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
    ),
    min_size=2,
    max_size=30,
)

word_lists = st.lists(
    st.text(alphabet="abcd", min_size=0, max_size=7),
    min_size=2,
    max_size=25,
)

BACKENDS = ("brute", "mtree", "vptree")


def _vectors(points):
    return [np.asarray(p, dtype=np.float64) for p in points]


def _cftree_index(metric, objects):
    """A cf-tree index over a freshly fitted BUBBLE tree on ``objects``."""
    model = BUBBLE(
        metric,
        threshold=0.0,
        max_nodes=None,
        branching_factor=4,
        sample_size=min(8, len(objects)),
        representation_number=4,
        seed=0,
    ).fit(objects)
    return CFTreeIndex.from_tree(model.tree_, metric=metric)


def _brute_pairs(metric, objects, query):
    row = metric.one_to_many(query, list(objects))
    return sorted((float(v), i) for i, v in enumerate(row))


def _assert_same_answers(metric_factory, objects, query, k, radius):
    """All backends (and cf-tree over its own clustroids) match brute force."""
    reference_metric = metric_factory()
    cf = _cftree_index(metric_factory(), objects)
    # The cf-tree indexes the leaf clustroids of its tree; feed that exact
    # object list to every other backend so neighbour indices agree.
    indexed = list(cf.objects)
    expected = _brute_pairs(reference_metric, indexed, query)

    for backend, index in _all_indexes(metric_factory, indexed, cf):
        knn = index.nearest(query, k=k)
        want = expected[: min(k, len(indexed))]
        got = [(n.distance, n.index) for n in knn.neighbors]
        assert got == want, f"{backend} k-NN diverged from brute force"
        assert knn.n_calls <= len(indexed), f"{backend} k-NN cost exceeds brute"

        rng_result = index.within(query, radius)
        want_range = [(v, i) for v, i in expected if v <= radius]
        got_range = [(n.distance, n.index) for n in rng_result.neighbors]
        assert got_range == want_range, f"{backend} range diverged from brute force"
        assert rng_result.n_calls <= len(indexed)


def _all_indexes(metric_factory, indexed, cf):
    yield "cftree", cf
    for backend in BACKENDS:
        index = make_index(backend, metric_factory(), **_backend_kwargs(backend))
        index.build(indexed)
        yield backend, index


def _backend_kwargs(backend):
    if backend == "mtree":
        return {"node_capacity": 4}
    if backend == "vptree":
        return {"leaf_size": 4, "seed": 0}
    return {}


class TestBackendEquivalenceVectors:
    @given(points=point_lists, k=st.integers(min_value=1, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_knn_and_range_bit_identical(self, points, k):
        objects = _vectors(points)
        query = np.asarray(points[0], dtype=np.float64) + 0.25
        _assert_same_answers(EuclideanDistance, objects, query, k, radius=30.0)

    @given(points=point_lists)
    @settings(max_examples=20, deadline=None)
    def test_duplicate_points_resolve_ties_to_lowest_index(self, points):
        # Duplicates force exact distance ties; (distance, index) ordering
        # must resolve them to the lowest index identically everywhere.
        # (cf-tree is exercised elsewhere: its tree collapses duplicates.)
        objects = _vectors(points) + _vectors(points)
        query = np.asarray(points[-1], dtype=np.float64)
        expected = _brute_pairs(EuclideanDistance(), objects, query)
        for backend in BACKENDS:
            index = make_index(
                backend, EuclideanDistance(), **_backend_kwargs(backend)
            )
            index.build(objects)
            got = [(n.distance, n.index) for n in index.nearest(query, k=3)]
            assert got == expected[: min(3, len(objects))], backend
            got_range = [
                (n.distance, n.index) for n in index.within(query, 5.0)
            ]
            assert got_range == [(v, i) for v, i in expected if v <= 5.0], backend


class TestBackendEquivalenceStrings:
    @given(words=word_lists, k=st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_knn_and_range_bit_identical(self, words, k):
        _assert_same_answers(EditDistance, words, words[0] + "a", k, radius=3.0)


class TestQueryCostNeverExceedsBrute:
    @given(points=point_lists, k=st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_per_query_ncd_bounded_by_linear_scan(self, points, k):
        objects = _vectors(points)
        query = np.zeros(3)
        for backend in BACKENDS:
            metric = EuclideanDistance()
            index = make_index(backend, metric, **_backend_kwargs(backend))
            index.build(objects)
            result = index.nearest(query, k=k)
            assert result.n_calls <= len(objects)
            assert result.n_evaluated + result.n_pruned == len(objects)


class _ledger:
    """Context manager activating a fresh :class:`CallLedger`."""

    def __enter__(self):
        self.ledger = CallLedger()
        self.previous = activate_ledger(self.ledger)
        return self.ledger

    def __exit__(self, *exc):
        deactivate_ledger(self.previous)
        return False


class TestLedgerConservationWithQueryTraffic:
    @given(points=point_lists)
    @settings(max_examples=15, deadline=None)
    def test_sites_partition_total_under_guard(self, points):
        metric = GuardedMetric(EuclideanDistance())
        objects = _vectors(points)
        with _ledger() as ledger:
            index = make_index("vptree", metric, leaf_size=4, seed=0)
            index.build(objects)
            index.nearest(np.zeros(3), k=2)
            index.within(np.ones(3), 10.0)
        assert sum(ledger.by_site.values()) == ledger.total
        assert "query-knn" in ledger.by_site
        if len(objects) > 4:  # a single leaf bucket builds for free
            assert ledger.by_site.get("query-build", 0) > 0

    @given(words=word_lists)
    @settings(max_examples=15, deadline=None)
    def test_sites_partition_total_under_cache(self, words):
        metric = CachedDistance(EditDistance())
        with _ledger() as ledger:
            index = make_index("mtree", metric, node_capacity=4)
            index.build(words)
            index.nearest("ab", k=2)
            index.within("ab", 2.0)
        assert sum(ledger.by_site.values()) == ledger.total

    @given(points=point_lists)
    @settings(max_examples=10, deadline=None)
    def test_cftree_query_sites_conserve_with_build_traffic(self, points):
        metric = EuclideanDistance()
        objects = _vectors(points)
        with _ledger() as ledger:
            index = _cftree_index(metric, objects)
            index.nearest(np.zeros(3), k=2)
            index.within(np.zeros(3), 25.0)
        assert sum(ledger.by_site.values()) == ledger.total
        assert "query-knn" in ledger.by_site
