"""Equivalence and accounting tests for the pruned routing engine.

The engine's contract (:mod:`repro.core.routing`) is *exactness*: with
pruning on, every routing decision — and therefore the whole tree — is
bit-identical to the exhaustive scan, only NCD changes. These tests pin
that contract across random workloads (hypothesis), both policies, vector
and string metrics, plus the batch-insert path and the PruningStats
counter invariants.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bubble import BubblePolicy
from repro.core.bubble_fm import BubbleFMPolicy
from repro.core.cftree import CFTree
from repro.core.routing import PruningStats
from repro.metrics import EditDistance, EuclideanDistance

point_lists = st.lists(
    st.tuples(
        st.floats(min_value=-1000, max_value=1000, allow_nan=False),
        st.floats(min_value=-1000, max_value=1000, allow_nan=False),
    ),
    min_size=1,
    max_size=80,
)

word_lists = st.lists(
    st.text(alphabet="abcd ", min_size=0, max_size=8), min_size=2, max_size=60
)


def build(objs, policy_cls=BubblePolicy, metric_factory=EuclideanDistance,
          prune=True, batch=None, **policy_kw):
    metric = metric_factory()
    policy = policy_cls(
        metric, representation_number=4, sample_size=8, seed=0, prune=prune,
        **policy_kw,
    )
    tree = CFTree(policy, branching_factor=4, threshold=0.5, seed=0)
    if batch is None:
        for obj in objs:
            tree.insert(obj)
    else:
        for start in range(0, len(objs), batch):
            tree.insert_batch(objs[start : start + batch])
    return tree, policy, metric


def tree_signature(tree):
    """Structure + leaf clustroids, byte-exact — equal iff trees identical."""
    sig = []

    def walk(node):
        if node.is_leaf:
            sig.append(
                tuple(repr(np.asarray(f.clustroid).tolist()) for f in node.entries)
            )
        else:
            sig.append(len(node.entries))
            for entry in node.entries:
                walk(entry.child)

    walk(tree.root)
    return sig


class TestPrunedEquivalence:
    @given(points=point_lists)
    @settings(max_examples=40, deadline=None)
    def test_bubble_tree_identical_to_exhaustive(self, points):
        objs = [np.asarray(p, dtype=float) for p in points]
        exhaustive, _, m_off = build(objs, prune=False)
        pruned, _, m_on = build(objs, prune=True)
        assert tree_signature(exhaustive) == tree_signature(pruned)
        assert m_on.n_calls <= m_off.n_calls

    @given(points=point_lists)
    @settings(max_examples=25, deadline=None)
    def test_bubble_fm_tree_identical_to_exhaustive(self, points):
        objs = [np.asarray(p, dtype=float) for p in points]
        exhaustive, _, m_off = build(objs, BubbleFMPolicy, prune=False, image_dim=2)
        pruned, _, m_on = build(objs, BubbleFMPolicy, prune=True, image_dim=2)
        assert tree_signature(exhaustive) == tree_signature(pruned)
        assert m_on.n_calls <= m_off.n_calls

    @given(words=word_lists)
    @settings(max_examples=25, deadline=None)
    def test_string_metric_tree_identical(self, words):
        exhaustive, _, m_off = build(words, metric_factory=EditDistance, prune=False)
        pruned, _, m_on = build(words, metric_factory=EditDistance, prune=True)

        def sig(tree):
            out = []

            def walk(node):
                if node.is_leaf:
                    out.append(tuple(f.clustroid for f in node.entries))
                else:
                    out.append(len(node.entries))
                    for entry in node.entries:
                        walk(entry.child)

            walk(tree.root)
            return out

        assert sig(exhaustive) == sig(pruned)
        assert m_on.n_calls <= m_off.n_calls

    def test_assignments_identical_on_clustered_data(self):
        rng = np.random.default_rng(3)
        centers = rng.uniform(0, 100, size=(8, 5))
        objs = [
            centers[i % 8] + rng.normal(0, 0.5, size=5) for i in range(400)
        ]
        exhaustive, p_off, m_off = build(objs, prune=False)
        pruned, p_on, m_on = build(objs, prune=True)
        assert tree_signature(exhaustive) == tree_signature(pruned)
        # The pruned scan must show a real saving on clustered data.
        assert m_on.n_calls < m_off.n_calls
        assert p_on.pruning_stats.candidates_pruned > 0


class TestBatchInsert:
    @given(points=point_lists)
    @settings(max_examples=25, deadline=None)
    def test_batch_insert_matches_sequential(self, points):
        objs = [np.asarray(p, dtype=float) for p in points]
        sequential, _, _ = build(objs, prune=True)
        batched, _, _ = build(objs, prune=True, batch=16)
        assert tree_signature(sequential) == tree_signature(batched)

    def test_batch_insert_matches_sequential_fm(self):
        rng = np.random.default_rng(11)
        objs = [rng.uniform(0, 100, size=3) for _ in range(300)]
        sequential, _, _ = build(objs, BubbleFMPolicy, image_dim=2)
        batched, _, _ = build(objs, BubbleFMPolicy, image_dim=2, batch=32)
        assert tree_signature(sequential) == tree_signature(batched)

    def test_wasted_hints_are_bounded_and_tracked(self):
        rng = np.random.default_rng(4)
        objs = [rng.uniform(0, 100, size=2) for _ in range(250)]
        _, policy, _ = build(objs, prune=True, batch=64)
        stats = policy.pruning_stats
        assert stats.block_hints_wasted <= stats.block_hints
        # Consumed hints = gathered - wasted; every consumed hint replaced
        # exactly one per-query root pivot call.
        assert stats.block_gathers > 0

    def test_empty_batch_is_noop(self):
        tree, _, metric = build([np.zeros(2)], prune=True)
        before = metric.n_calls
        tree.insert_batch([])
        assert metric.n_calls == before
        assert tree.n_objects == 1


class TestPruningStats:
    def test_counter_invariants(self):
        rng = np.random.default_rng(9)
        objs = [rng.uniform(0, 50, size=4) for _ in range(300)]
        _, policy, _ = build(objs, prune=True)
        stats = policy.pruning_stats
        assert stats.queries > 0
        assert (
            stats.candidates_evaluated + stats.candidates_pruned
            == stats.candidates_total
        )
        assert stats.candidates_pruned >= 0
        assert stats.maintenance_evals >= 0
        assert stats.geometry_builds > 0

    def test_as_dict_round_trip_and_reset(self):
        stats = PruningStats(queries=3, candidates_total=10,
                             candidates_evaluated=7, candidates_pruned=3)
        d = stats.as_dict()
        assert d["queries"] == 3
        assert d["candidates_pruned"] == 3
        stats.reset()
        assert all(v == 0 for v in stats.as_dict().values())

    def test_prune_off_leaves_stats_empty(self):
        rng = np.random.default_rng(2)
        objs = [rng.uniform(0, 50, size=2) for _ in range(150)]
        _, policy, _ = build(objs, prune=False)
        assert policy.pruning_stats.queries == 0
        assert policy.pruning_stats.maintenance_evals == 0

    def test_snapshot_surfaces_pruning(self):
        from repro.observability.stats import StatsSnapshot

        rng = np.random.default_rng(6)
        objs = [rng.uniform(0, 50, size=2) for _ in range(200)]
        tree, policy, metric = build(objs, prune=True)
        snap = StatsSnapshot.from_tree(tree, metric=metric)
        assert snap.pruning is not None
        assert snap.pruning["queries"] == policy.pruning_stats.queries
        assert "pruned candidates" in snap.format()
        assert snap.to_dict()["pruning"] == snap.pruning


class TestConservationLaw:
    def test_site_attribution_sums_to_total_with_pruning(self):
        from repro.observability import Tracer

        rng = np.random.default_rng(12)
        objs = [rng.uniform(0, 100, size=3) for _ in range(400)]
        metric = EuclideanDistance()
        tracer = Tracer()
        with tracer:
            policy = BubblePolicy(
                metric, representation_number=4, sample_size=8, seed=0, prune=True
            )
            tree = CFTree(policy, branching_factor=4, threshold=0.5, seed=0)
            for obj in objs:
                tree.insert(obj)
        tracer.close()
        summary = tracer.summary()
        assert summary["ncd_total"] == metric.n_calls
        assert sum(summary["ncd_by_site"].values()) == summary["ncd_total"]
