"""Tests for the CF*-tree invariant sanitizer (``repro.analysis.audit``).

Healthy trees — BUBBLE and BUBBLE-FM, before and after rebuilds and
checkpoint round-trips — must audit clean; seeded corruptions (swapped
clustroid, over-branched node, stale RowSum) must be caught and named.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BUBBLE, BUBBLEFM, EuclideanDistance
from repro.analysis.audit import AuditReport, audit_tree
from repro.core.bubble import BubblePolicy
from repro.core.cftree import CFTree
from repro.exceptions import ParameterError, TreeInvariantError
from repro.persistence import load_checkpoint, save_checkpoint


@pytest.fixture
def points(rng):
    return list(rng.normal(size=(400, 2)))


def fitted_bubble(points, **kw):
    kw.setdefault("max_nodes", 20)
    kw.setdefault("seed", 7)
    return BUBBLE(EuclideanDistance(), **kw).fit(points)


def corruptible_feature(tree):
    """A leaf CF* whose clustroid corruption is actually observable:
    several representatives with distinct RowSums."""
    for f in tree.leaf_features():
        if len(f._rowsums) >= 3 and max(f._rowsums) > min(f._rowsums) + 1e-6:
            return f
    raise AssertionError("fixture tree has no multi-representative feature")


def first_leaf(tree):
    node = tree.root
    while not node.is_leaf:
        node = node.entries[0].child
    return node


# ----------------------------------------------------------------------
# Healthy trees audit clean
# ----------------------------------------------------------------------
class TestHealthyTrees:
    def test_bubble_tree_passes(self, points, audit):
        model = fitted_bubble(points)
        report = audit(model.tree_)
        assert isinstance(report, AuditReport)
        assert report.ok and report.errors == []

    def test_bubble_fm_tree_passes(self, points, audit):
        model = BUBBLEFM(
            EuclideanDistance(), max_nodes=20, image_dim=2, seed=7
        ).fit(points)
        assert audit(model.tree_).ok

    def test_passes_across_rebuilds(self, points, audit):
        model = fitted_bubble(points, max_nodes=10)
        assert model.tree_.n_rebuilds > 0  # small tree forces threshold raises
        assert audit(model.tree_).ok

    def test_passes_after_checkpoint_resume(self, points, audit, tmp_path):
        path = tmp_path / "scan.ckpt"
        model = BUBBLE(EuclideanDistance(), max_nodes=20, seed=7)
        model.partial_fit(points[:250])
        save_checkpoint(path, model.tree_, cursor=250)
        ck = load_checkpoint(path, metric=EuclideanDistance())
        assert audit(ck.tree).ok

        resumed = BUBBLE(EuclideanDistance(), max_nodes=20, seed=7)
        resumed.fit(points, resume_from=path)
        assert audit(resumed.tree_).ok

    def test_audit_is_ncd_neutral(self, points):
        model = fitted_bubble(points)
        metric = model.tree_.policy.metric
        before = metric.n_calls
        audit_tree(model.tree_, recompute_exact=True)
        assert metric.n_calls == before


# ----------------------------------------------------------------------
# Seeded corruptions are caught
# ----------------------------------------------------------------------
class TestCorruptions:
    def test_swapped_clustroid_detected(self, points):
        model = fitted_bubble(points)
        feature = corruptible_feature(model.tree_)
        feature._clustroid_idx = int(np.argmax(feature._rowsums))
        with pytest.raises(TreeInvariantError, match="clustroid"):
            audit_tree(model.tree_)
        report = audit_tree(model.tree_, raise_on_error=False)
        assert any(i.check == "clustroid" for i in report.errors)

    def test_stale_rowsum_detected(self, points):
        model = fitted_bubble(points)
        feature = corruptible_feature(model.tree_)
        feature._rowsums = feature._rowsums.copy()
        feature._rowsums[feature._clustroid_idx] += 1000.0
        with pytest.raises(TreeInvariantError):
            audit_tree(model.tree_)
        report = audit_tree(model.tree_, raise_on_error=False)
        assert any(i.check in ("rowsum-stale", "clustroid", "radius") for i in report.errors)

    def test_overbranched_node_detected(self, points):
        model = fitted_bubble(points)
        tree = model.tree_
        leaf = first_leaf(tree)
        donor = corruptible_feature(tree)
        while len(leaf.entries) <= tree.branching_factor:
            leaf.entries.append(donor)
        report = audit_tree(tree, raise_on_error=False)
        assert any(i.check == "branching" for i in report.errors)
        with pytest.raises(TreeInvariantError):
            audit_tree(tree)

    def test_error_names_offending_path(self, points):
        model = fitted_bubble(points)
        feature = corruptible_feature(model.tree_)
        feature._clustroid_idx = int(np.argmax(feature._rowsums))
        report = audit_tree(model.tree_, raise_on_error=False)
        bad = next(i for i in report.errors if i.check == "clustroid")
        assert bad.path.startswith("root")
        assert "entry[" in bad.path

    def test_bad_threshold_detected(self, points):
        model = fitted_bubble(points)
        model.tree_.threshold = float("nan")
        report = audit_tree(model.tree_, raise_on_error=False)
        assert any(i.check == "threshold" for i in report.errors)


# ----------------------------------------------------------------------
# validate="debug" wiring
# ----------------------------------------------------------------------
class TestValidateDebug:
    def test_rejects_unknown_mode(self):
        policy = BubblePolicy(EuclideanDistance())
        with pytest.raises(ParameterError):
            CFTree(policy, validate="paranoid")

    def test_debug_build_audits_after_splits(self, points):
        model = BUBBLE(EuclideanDistance(), max_nodes=20, seed=7, validate="debug")
        model.fit(points[:200])
        assert model.tree_.validate == "debug"
        assert model.tree_.height > 1  # splits happened, so audits ran

    def test_debug_catches_corruption_on_next_split(self, rng):
        metric = EuclideanDistance()
        policy = BubblePolicy(metric, representation_number=4, sample_size=10, seed=0)
        tree = CFTree(policy, branching_factor=4, threshold=0.0, seed=0, validate="debug")
        pts = rng.normal(size=(200, 2))
        with pytest.raises(TreeInvariantError):
            for i, p in enumerate(pts):
                tree.insert(p)
                if i == 60:
                    assert tree.height > 1
                    # Any invariant break works; object-count is shape-agnostic.
                    tree.leaf_features()[0].n += 5

    def test_bubble_fm_forwards_validate(self, points):
        model = BUBBLEFM(
            EuclideanDistance(), max_nodes=20, image_dim=2, seed=7, validate="debug"
        ).fit(points[:200])
        assert model.tree_.validate == "debug"


# ----------------------------------------------------------------------
# Property: random datasets always build audit-clean trees
# ----------------------------------------------------------------------
class TestProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.integers(min_value=30, max_value=250),
        max_nodes=st.sampled_from([8, 16, 32]),
    )
    def test_bubble_always_audits_clean(self, seed, n, max_nodes):
        data = list(np.random.default_rng(seed).normal(size=(n, 2)))
        model = BUBBLE(EuclideanDistance(), max_nodes=max_nodes, seed=seed).fit(data)
        report = audit_tree(model.tree_, raise_on_error=False)
        assert report.errors == [], report.format()

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_bubble_fm_always_audits_clean(self, seed):
        data = list(np.random.default_rng(seed).normal(size=(150, 3)))
        model = BUBBLEFM(
            EuclideanDistance(), max_nodes=16, image_dim=2, seed=seed
        ).fit(data)
        report = audit_tree(model.tree_, raise_on_error=False)
        assert report.errors == [], report.format()
