"""Unit tests for the authority-file construction pipeline (Section 7)."""

import numpy as np
import pytest

from repro.datasets import make_authority_dataset
from repro.exceptions import EmptyDatasetError, ParameterError
from repro.metrics import EditDistance
from repro.pipelines import build_authority_file


@pytest.fixture(scope="module")
def small_corpus():
    return make_authority_dataset(n_classes=25, n_strings=250, seed=11)


class TestBuild:
    def test_empty_rejected(self):
        with pytest.raises(EmptyDatasetError):
            build_authority_file([])

    def test_bad_assignment_rejected(self, small_corpus):
        with pytest.raises(ParameterError):
            build_authority_file(small_corpus.strings, assignment="fuzzy")

    def test_every_record_labeled(self, small_corpus):
        af = build_authority_file(small_corpus.strings, seed=0)
        assert af.record_labels.shape == (small_corpus.n_strings,)
        assert af.record_labels.max() < af.n_classes

    def test_members_partition_distinct_strings(self, small_corpus):
        af = build_authority_file(small_corpus.strings, seed=0)
        all_members = [s for group in af.members for s in group]
        assert len(all_members) == len(set(all_members))
        assert set(all_members) == set(small_corpus.strings)

    def test_canonical_is_a_member(self, small_corpus):
        af = build_authority_file(small_corpus.strings, seed=0)
        for canon, group in zip(af.canonical, af.members):
            assert canon in group

    def test_no_empty_classes(self, small_corpus):
        af = build_authority_file(small_corpus.strings, seed=0)
        assert all(group for group in af.members)

    def test_lookup_round_trip(self, small_corpus):
        af = build_authority_file(small_corpus.strings, seed=0)
        s = small_corpus.strings[0]
        cls = af.class_of(s)
        assert cls is not None
        assert af.lookup(s) == af.canonical[cls]
        assert s in af.members[cls]

    def test_lookup_unknown(self, small_corpus):
        af = build_authority_file(small_corpus.strings, seed=0)
        assert af.lookup("zzz-not-a-record") is None
        assert af.class_of("zzz-not-a-record") is None

    def test_diagnostics(self, small_corpus):
        af = build_authority_file(small_corpus.strings, seed=0)
        assert af.n_distance_calls > 0
        assert af.seconds > 0


class TestQuality:
    def test_variants_of_one_author_mostly_together(self, small_corpus):
        af = build_authority_file(
            small_corpus.strings, threshold=2.0, assignment="linear", seed=0
        )
        # For each true class, its records should concentrate in one
        # authority class (splitting is allowed; mixing is the failure).
        from repro.evaluation import misplaced_count

        mis = misplaced_count(small_corpus.labels, af.record_labels)
        assert mis <= 0.1 * small_corpus.n_strings

    def test_tighter_threshold_more_classes(self, small_corpus):
        loose = build_authority_file(small_corpus.strings, threshold=4.0, seed=0)
        tight = build_authority_file(small_corpus.strings, threshold=1.0, seed=0)
        assert tight.n_classes >= loose.n_classes

    def test_cache_reduces_calls(self, small_corpus):
        cached = build_authority_file(small_corpus.strings, cache=True, seed=0)
        uncached = build_authority_file(small_corpus.strings, cache=False, seed=0)
        assert cached.n_distance_calls < uncached.n_distance_calls

    def test_custom_metric(self, small_corpus):
        metric = EditDistance()
        af = build_authority_file(small_corpus.strings, metric=metric, cache=False, seed=0)
        assert af.n_distance_calls == metric.n_calls
