"""Slab-arena CF* storage: drift, lifecycle, adoption, and round-trips.

Covers the BETULA-style refactor of leaf CF* state:

* the long-stream drift regression — a ≥50k-absorb BUBBLE tree with a
  large-magnitude offset whose exact-vs-incremental RowSum error stays
  under a bound the pre-refactor naive ``+=`` accumulation measurably
  violates;
* :class:`~repro.core.arena.FeatureArena` row lifecycle (alloc, release,
  recycle, growth, adopt) and memory accounting (slab vs the legacy
  list-of-objects layout);
* checkpoint/resume bit-equivalence of slab state;
* worker-arena adoption through ``insert_feature_batch`` (the parallel
  merge path).
"""

from __future__ import annotations

import math
import pickle

import numpy as np
import pytest

from repro import BUBBLE, EuclideanDistance
from repro.analysis.audit import audit_tree
from repro.core.arena import FeatureArena
from repro.core.bubble import BubblePolicy
from repro.core.cftree import CFTree
from repro.core.features import BubbleClusterFeature
from repro.exceptions import ParameterError
from repro.observability import StatsSnapshot
from repro.persistence import load_checkpoint, save_checkpoint

#: Exact-vs-incremental RowSum relative error bound for the long-stream
#: cell. The compensated slab stays orders of magnitude below it (~1e-16);
#: the pre-refactor scalar ``+=`` loop violates it by more than 10x
#: (~1.25e-12 on this stream).
DRIFT_BOUND = 1e-13


def adversarial_stream(n_small: int = 50_000, seed: int = 0):
    """Two tight representatives, one huge-offset point, then ``n_small``
    points whose squared distances (~0.25) sit far below the ulp of the
    huge RowSum (~2.0 at 1e16) — naive accumulation drops every one."""
    rng = np.random.default_rng(seed)
    rep_a = np.array([0.0, 0.0])
    rep_b = np.array([1.0, 0.0])
    huge = np.array([1e8, 0.0])
    theta = rng.uniform(0.0, 2.0 * np.pi, size=n_small)
    small = 0.5 * np.stack([np.cos(theta), np.sin(theta)], axis=1)
    return rep_a, rep_b, huge, list(small)


# ----------------------------------------------------------------------
# Long-stream drift regression (the tentpole's numerical claim)
# ----------------------------------------------------------------------
class TestLongStreamDrift:
    @pytest.fixture(scope="class")
    def long_stream_tree(self):
        rep_a, rep_b, huge, small = adversarial_stream()
        metric = EuclideanDistance()
        policy = BubblePolicy(metric, representation_number=2, sample_size=10, seed=0)
        tree = CFTree(policy, threshold=1e9, seed=0)
        for obj in [rep_a, rep_b, huge, *small]:
            tree.insert(obj)
        return tree, metric, rep_a, [rep_b, huge, *small]

    def test_absorbs_into_single_feature(self, long_stream_tree):
        tree, _, rep_a, rest = long_stream_tree
        features = tree.leaf_features()
        assert len(features) == 1
        assert features[0].n == 1 + len(rest)
        # The two seed points stay the permanent representatives, so their
        # incrementally-maintained RowSums are comparable to a replay.
        assert np.allclose(features[0]._reps[0], rep_a)

    def test_compensated_rowsum_tracks_exact_replay(self, long_stream_tree):
        tree, metric, rep_a, rest = long_stream_tree
        feature = tree.leaf_features()[0]
        sq = np.asarray(metric.one_to_many(rep_a, rest), dtype=np.float64) ** 2
        exact = math.fsum(sq.tolist())
        stored = feature.rowsums[0]
        assert abs(stored - exact) / exact <= DRIFT_BOUND

    def test_naive_accumulation_violates_the_bound(self, long_stream_tree):
        """Replay of the pre-refactor scalar ``+=`` loop over the identical
        update stream: the huge offset swallows every later addend, so the
        naive total misses ~n_small * 0.25 — measurably past DRIFT_BOUND."""
        _, metric, rep_a, rest = long_stream_tree
        sq = np.asarray(metric.one_to_many(rep_a, rest), dtype=np.float64) ** 2
        exact = math.fsum(sq.tolist())
        naive = 0.0
        for v in sq:
            naive += float(v)
        assert abs(naive - exact) / exact > 10 * DRIFT_BOUND

    def test_compensation_actually_engaged(self, long_stream_tree):
        """The compensation slot carries the sub-ulp mass naive += loses —
        it must be large in absolute terms (~n_small * 0.25) even though
        it is tiny relative to the RowSum."""
        tree, _, _, _ = long_stream_tree
        feature = tree.leaf_features()[0]
        comp = float(tree.policy.arena.compensations[feature._row, 0])
        assert comp > 1e3

    def test_long_stream_tree_audits_clean(self, long_stream_tree):
        tree, _, _, _ = long_stream_tree
        report = audit_tree(tree, raise_on_error=False)
        assert report.errors == [], report.format()


# ----------------------------------------------------------------------
# Arena lifecycle
# ----------------------------------------------------------------------
class TestFeatureArena:
    def test_alloc_release_recycle(self):
        arena = FeatureArena(4, capacity=2)
        r0, r1 = arena.alloc(), arena.alloc()
        assert arena.rows_used == 2
        arena.reps[r0, 0] = "x"
        arena.counts[r0] = 1
        arena.release(r0)
        assert arena.rows_used == 1
        assert arena.reps[r0, 0] is None and arena.counts[r0] == 0
        assert arena.alloc() == r0  # LIFO recycling
        assert r1 in arena.used_rows()

    def test_growth_preserves_rows(self):
        arena = FeatureArena(3, capacity=1)
        rows = []
        for i in range(9):
            row = arena.alloc()
            arena.rowsums[row, 0] = float(i)
            arena.reps[row, 0] = ("obj", i)
            arena.counts[row] = 1
            rows.append(row)
        assert arena.capacity >= 9
        for i, row in enumerate(rows):
            assert arena.rowsums[row, 0] == float(i)
            assert arena.reps[row, 0] == ("obj", i)

    def test_adopt_row_is_bit_exact(self):
        src = FeatureArena(4, capacity=1)
        row = src.alloc()
        src.rowsums[row, :2] = [1e16, 0.125]
        src.compensations[row, :2] = [12501.0, -3e-12]
        src.reps[row, 0] = "a"
        src.reps[row, 1] = "b"
        src.counts[row] = 2
        dst = FeatureArena(6)
        new_row = dst.adopt_row(src, row)
        assert dst.rowsums[new_row, :2].tolist() == [1e16, 0.125]
        assert dst.compensations[new_row, :2].tolist() == [12501.0, -3e-12]
        assert dst.reps[new_row, 0] is src.reps[row, 0]
        assert int(dst.counts[new_row]) == 2

    def test_adopt_row_rejects_wider_source(self):
        src = FeatureArena(8, capacity=1)
        row = src.alloc()
        with pytest.raises(ParameterError):
            FeatureArena(4).adopt_row(src, row)

    def test_bytes_reduction_vs_legacy_layout(self):
        """The headline memory claim: full slab rows cost >=30% less than
        the legacy two-lists-plus-boxed-floats layout they replaced."""
        arena = FeatureArena(10)
        for _ in range(100):
            row = arena.alloc()
            arena.counts[row] = 10
        snap = arena.snapshot()
        assert snap["rows_used"] == 100
        assert snap["bytes_per_leaf"] <= 0.7 * snap["legacy_bytes_per_leaf"]
        assert snap["bytes_reduction"] >= 0.3

    def test_snapshot_keys_and_occupancy(self):
        arena = FeatureArena(4, capacity=8)
        arena.alloc()
        snap = arena.snapshot()
        assert set(snap) == {
            "rows_used", "capacity", "width", "occupancy", "bytes_total",
            "bytes_per_leaf", "legacy_bytes_per_leaf", "bytes_reduction",
        }
        assert snap["occupancy"] == pytest.approx(1 / 8)
        assert snap["width"] == 4


# ----------------------------------------------------------------------
# Feature lifecycle on the slab
# ----------------------------------------------------------------------
class TestSlabFeatureLifecycle:
    def test_direct_construction_uses_private_arena(self):
        metric = EuclideanDistance()
        f = BubbleClusterFeature(metric, np.zeros(2), 4)
        assert f.arena.rows_used == 1
        assert f.arena.width == 4

    def test_arena_narrower_than_rep_cap_rejected(self):
        with pytest.raises(ParameterError):
            BubbleClusterFeature(
                EuclideanDistance(), np.zeros(2), 10, arena=FeatureArena(4)
            )

    def test_merge_releases_victim_row(self):
        metric = EuclideanDistance()
        arena = FeatureArena(4)
        fa = BubbleClusterFeature(metric, np.zeros(2), 4, arena=arena)
        fb = BubbleClusterFeature(metric, np.ones(2), 4, arena=arena)
        assert arena.rows_used == 2
        fa.merge(fb)
        assert arena.rows_used == 1
        assert fa.n == 2

    def test_tree_occupancy_matches_leaf_count(self, rng):
        metric = EuclideanDistance()
        model = BUBBLE(metric, max_nodes=20, seed=7)
        model.fit(list(rng.normal(size=(300, 2))))
        tree = model.tree_
        assert tree.policy.arena.rows_used == len(tree.leaf_features())

    def test_rowsums_property_is_compensated(self):
        metric = EuclideanDistance()
        f = BubbleClusterFeature(metric, np.zeros(2), 2)
        f.absorb(np.array([1.0, 0.0]))   # reps full: [A, B]
        f.absorb(np.array([1e8, 0.0]))   # rowsums jump to ~1e16, no replace
        for k in range(100):             # each d^2 ~ 0.25, below ulp(1e16)
            theta = 2.0 * np.pi * k / 100
            f.absorb(0.5 * np.array([np.cos(theta), np.sin(theta)]))
        raw = float(f._rowsums[0])
        effective = f.rowsums[0]
        assert effective > raw  # compensation holds the swallowed mass
        swallowed = effective - raw
        assert 20.0 < swallowed < 30.0  # ~100 * 0.25 of sub-ulp mass


# ----------------------------------------------------------------------
# Checkpoint round-trip
# ----------------------------------------------------------------------
class TestSlabCheckpointRoundTrip:
    def test_slab_state_round_trips_bit_exactly(self, rng, tmp_path):
        metric = EuclideanDistance()
        model = BUBBLE(metric, max_nodes=20, seed=7)
        model.partial_fit(list(rng.normal(size=(250, 2))))
        tree = model.tree_
        path = tmp_path / "slab.ckpt"
        save_checkpoint(path, tree, cursor=250)
        restored = load_checkpoint(path, metric=EuclideanDistance()).tree

        arena, r_arena = tree.policy.arena, restored.policy.arena
        assert r_arena.width == arena.width
        assert r_arena.rows_used == arena.rows_used
        before = sorted(
            (f._row, f.n, tuple(f._rowsums.tolist())) for f in tree.leaf_features()
        )
        after = sorted(
            (f._row, f.n, tuple(f._rowsums.tolist())) for f in restored.leaf_features()
        )
        assert before == after  # float64 bits, not approximations
        np.testing.assert_array_equal(
            arena.compensations[arena.used_rows()],
            r_arena.compensations[r_arena.used_rows()],
        )
        for f in restored.leaf_features():
            assert f.arena is r_arena  # one shared arena in the pickle graph
        assert audit_tree(restored, raise_on_error=False).errors == []


# ----------------------------------------------------------------------
# Worker-arena adoption (the parallel merge path)
# ----------------------------------------------------------------------
class TestWorkerArenaAdoption:
    def _worker_features(self, seed: int):
        """Features built under their own policy/arena, shipped via pickle —
        exactly how shard harvests come home."""
        rng = np.random.default_rng(seed)
        metric = EuclideanDistance()
        policy = BubblePolicy(metric, representation_number=4, sample_size=10, seed=seed)
        features = []
        for center in (0.0, 10.0, 20.0):
            f = policy.new_leaf_feature(rng.normal(center, 0.1, size=2))
            for _ in range(8):
                f.absorb(rng.normal(center, 0.1, size=2))
            features.append(f)
        return pickle.loads(pickle.dumps(features))

    def test_insert_feature_batch_adopts_into_tree_arena(self):
        features = self._worker_features(seed=3)
        want = [(f.n, tuple(f.rowsums)) for f in features]
        metric = EuclideanDistance()
        policy = BubblePolicy(metric, representation_number=4, sample_size=10, seed=0)
        tree = CFTree(policy, threshold=1.0, seed=0)
        tree.insert_feature_batch(features)

        assert tree.n_objects == sum(n for n, _ in want)
        for f in tree.leaf_features():
            assert f.arena is policy.arena
        # Adoption copied the rows bit-for-bit (clusters are far apart, so
        # no merges perturbed them).
        got = sorted((f.n, tuple(f.rowsums)) for f in tree.leaf_features())
        assert got == sorted(want)
        assert policy.arena.rows_used == len(tree.leaf_features())
        assert audit_tree(tree, raise_on_error=False).errors == []

    def test_adoption_releases_worker_rows(self):
        features = self._worker_features(seed=5)
        worker_arena = features[0].arena
        assert worker_arena.rows_used == len(features)
        policy = BubblePolicy(
            EuclideanDistance(), representation_number=4, sample_size=10, seed=0
        )
        tree = CFTree(policy, threshold=1.0, seed=0)
        tree.insert_feature_batch(features)
        assert worker_arena.rows_used == 0


# ----------------------------------------------------------------------
# Observability surface
# ----------------------------------------------------------------------
class TestSlabStats:
    def test_snapshot_and_format_carry_slab_accounting(self, rng):
        model = BUBBLE(EuclideanDistance(), max_nodes=20, seed=7)
        model.fit(list(rng.normal(size=(200, 2))))
        snap = StatsSnapshot.from_model(model)
        assert snap.slab is not None
        assert snap.slab["rows_used"] == len(model.tree_.leaf_features())
        assert snap.slab["bytes_per_leaf"] > 0
        assert snap.to_dict()["slab"] == snap.slab
        text = snap.format()
        assert "slab occupancy" in text
        assert "slab bytes/leaf" in text
