"""Checkpoint/resume: a scan killed mid-flight restarts from its last
snapshot and converges to the same result as an uninterrupted run."""

import numpy as np
import pytest

from repro import BUBBLE, BUBBLEFM, EuclideanDistance
from repro.exceptions import CheckpointError, MetricBudgetExceededError
from repro.metrics import EditDistance, FunctionDistance
from repro.persistence import Checkpoint, load_checkpoint, save_checkpoint
from repro.robustness import GuardedMetric


def signatures(model):
    return sorted((s.n, round(s.radius, 9)) for s in model.subclusters_)


@pytest.fixture
def points(rng):
    return list(rng.normal(size=(500, 2)))


class TestCheckpointPrimitives:
    def test_round_trip_tree_and_state(self, points, tmp_path):
        path = tmp_path / "scan.ckpt"
        model = BUBBLE(EuclideanDistance(), max_nodes=20, seed=3)
        model.partial_fit(points[:200])
        save_checkpoint(
            path, model.tree_, cursor=200,
            state={"custom": [1, 2]}, metadata={"note": "unit"},
        )
        ck = load_checkpoint(path, metric=EuclideanDistance())
        assert isinstance(ck, Checkpoint)
        assert ck.cursor == 200
        assert ck.state == {"custom": [1, 2]}
        assert ck.metadata == {"note": "unit"}
        assert ck.tree.n_objects == 200
        assert signatures_from_tree(ck.tree) == signatures_from_tree(model.tree_)

    def test_metric_reattached_everywhere(self, points, tmp_path):
        path = tmp_path / "scan.ckpt"
        model = BUBBLE(EuclideanDistance(), max_nodes=15, seed=0)
        model.partial_fit(points[:150])
        save_checkpoint(path, model.tree_, cursor=150)
        fresh = EuclideanDistance()
        ck = load_checkpoint(path, metric=fresh)
        assert ck.tree.policy.metric is fresh
        for feature in ck.tree.leaf_features():
            assert feature.metric is fresh

    def test_unpicklable_metric_is_stripped(self, tmp_path):
        path = tmp_path / "scan.ckpt"
        metric = FunctionDistance(lambda a, b: abs(a - b), name="lam")
        model = BUBBLE(metric, threshold=0.5, seed=0)
        model.partial_fit([float(i % 7) for i in range(50)])
        save_checkpoint(path, model.tree_, cursor=50)  # must not raise
        ck = load_checkpoint(path, metric=metric)
        assert ck.tree.n_objects == 50

    # pickle reports corruption through several exception types depending on
    # which opcode the garbage happens to hit; all must map to CheckpointError
    @pytest.mark.parametrize(
        "garbage", [b"this is not a pickle", b"garbage\n", b"", b"\x80\x05"]
    )
    def test_corrupt_file_raises_checkpoint_error(self, tmp_path, garbage):
        path = tmp_path / "bad.ckpt"
        path.write_bytes(garbage)
        with pytest.raises(CheckpointError):
            load_checkpoint(path, metric=EuclideanDistance())

    def test_atomic_write_replaces_existing(self, points, tmp_path):
        path = tmp_path / "scan.ckpt"
        model = BUBBLE(EuclideanDistance(), max_nodes=20, seed=3)
        model.partial_fit(points[:100])
        save_checkpoint(path, model.tree_, cursor=100)
        model.partial_fit(points[100:200])
        save_checkpoint(path, model.tree_, cursor=200)
        assert load_checkpoint(path, metric=EuclideanDistance()).cursor == 200
        assert not list(tmp_path.glob("*.tmp.*"))


def signatures_from_tree(tree):
    return sorted((f.n, round(f.radius, 9)) for f in tree.leaf_features())


class TestResumeEquivalence:
    def test_bubble_resume_matches_uninterrupted(self, points, tmp_path):
        path = tmp_path / "scan.ckpt"
        ref = BUBBLE(EuclideanDistance(), max_nodes=20, seed=5).fit(points)

        interrupted = BUBBLE(EuclideanDistance(), max_nodes=20, seed=5)
        # "Kill" the build partway: scan only a prefix, checkpointing as we go.
        interrupted.fit(points[:317], checkpoint_path=path, checkpoint_every=100)
        assert interrupted.ingest_report_.n_checkpoints == 3

        resumed = BUBBLE(EuclideanDistance(), max_nodes=20, seed=5)
        resumed.fit(points, resume_from=path)
        assert resumed.ingest_report_.resumed_at == 300
        assert resumed.tree_.n_objects == len(points)
        assert signatures(resumed) == signatures(ref)

    def test_bubble_fm_resume_matches_uninterrupted(self, rng, tmp_path):
        data = list(rng.uniform(0, 100, size=(400, 2)))
        path = tmp_path / "scan.ckpt"
        kwargs = dict(max_nodes=15, image_dim=2, seed=4)
        ref = BUBBLEFM(EuclideanDistance(), **kwargs).fit(data)

        interrupted = BUBBLEFM(EuclideanDistance(), **kwargs)
        interrupted.fit(data[:250], checkpoint_path=path, checkpoint_every=125)

        resumed = BUBBLEFM(EuclideanDistance(), **kwargs)
        resumed.fit(data, resume_from=path)
        assert signatures(resumed) == signatures(ref)

    def test_crash_via_budget_then_resume(self, points, tmp_path):
        """A realistic kill: the metric budget aborts the scan mid-flight;
        the resumed run (fresh budget) matches the uninterrupted result."""
        path = tmp_path / "scan.ckpt"
        ref = BUBBLE(EuclideanDistance(), max_nodes=20, seed=5).fit(points)

        budgeted = GuardedMetric(EuclideanDistance(), max_calls=20_000)
        crashed = BUBBLE(budgeted, max_nodes=20, seed=5)
        with pytest.raises(MetricBudgetExceededError):
            crashed.fit(points, checkpoint_path=path, checkpoint_every=50)
        cursor = load_checkpoint(path, metric=EuclideanDistance()).cursor
        assert 0 < cursor < len(points)

        resumed = BUBBLE(EuclideanDistance(), max_nodes=20, seed=5)
        resumed.fit(points, resume_from=path)
        assert signatures(resumed) == signatures(ref)

    def test_resume_restores_rng_stream(self, points, tmp_path):
        """The threshold heuristic samples leaves from the shared generator;
        equivalence across resume proves the RNG state round-trips."""
        path = tmp_path / "scan.ckpt"
        model = BUBBLE(EuclideanDistance(), max_nodes=10, seed=9)
        model.fit(points[:400], checkpoint_path=path, checkpoint_every=200)
        assert model.tree_.n_rebuilds > 0  # the heuristic actually ran

        resumed = BUBBLE(EuclideanDistance(), max_nodes=10, seed=9)
        resumed.fit(points[:400], resume_from=path)
        ref = BUBBLE(EuclideanDistance(), max_nodes=10, seed=9).fit(points[:400])
        assert signatures(resumed) == signatures(ref)

    def test_string_scan_resume(self, tmp_path):
        words = [w + str(i % 9) for i, w in enumerate(
            ["smith", "smyth", "jones", "joness", "brown", "braun"] * 25
        )]
        path = tmp_path / "scan.ckpt"
        ref = BUBBLE(EditDistance(), threshold=2.0, seed=2).fit(words)
        interrupted = BUBBLE(EditDistance(), threshold=2.0, seed=2)
        interrupted.fit(words[:80], checkpoint_path=path, checkpoint_every=40)
        resumed = BUBBLE(EditDistance(), threshold=2.0, seed=2)
        resumed.fit(words, resume_from=path)
        assert signatures(resumed) == signatures(ref)


class TestResumeState:
    def test_quarantine_survives_checkpoint(self, tmp_path):
        from repro.robustness import FlakyMetric

        path = tmp_path / "scan.ckpt"
        objects = [0.0] + [float(i) for i in range(1, 60)]
        objects[10] = "bad"
        objects[45] = "bad"
        metric = FlakyMetric(
            FunctionDistance(lambda a, b: abs(a - b)),
            failure_rate=0.0,
            poison=lambda o: o == "bad",
        )
        model = BUBBLE(metric, threshold=3.0, seed=0)
        model.fit(
            objects[:30], on_error="quarantine",
            checkpoint_path=path, checkpoint_every=15,
        )
        resumed = BUBBLE(metric, threshold=3.0, seed=0)
        resumed.fit(objects, on_error="quarantine", resume_from=path)
        assert resumed.ingest_report_.n_quarantined == 2
        assert {r.index for r in resumed.quarantine_} == {10, 45}
        assert resumed.ingest_report_.n_seen == 60

    def test_algorithm_mismatch_rejected(self, points, tmp_path):
        path = tmp_path / "scan.ckpt"
        model = BUBBLE(EuclideanDistance(), max_nodes=20, seed=0)
        model.fit(points[:100], checkpoint_path=path, checkpoint_every=50)
        other = BUBBLEFM(EuclideanDistance(), max_nodes=20, seed=0)
        with pytest.raises(CheckpointError, match="BUBBLE"):
            other.fit(points, resume_from=path)

    def test_missing_checkpoint_raises(self, points, tmp_path):
        model = BUBBLE(EuclideanDistance(), seed=0)
        with pytest.raises((CheckpointError, FileNotFoundError)):
            model.fit(points, resume_from=tmp_path / "nope.ckpt")

    def test_report_counts_checkpoints(self, points, tmp_path):
        path = tmp_path / "scan.ckpt"
        model = BUBBLE(EuclideanDistance(), max_nodes=20, seed=0)
        model.fit(points[:220], checkpoint_path=path, checkpoint_every=100)
        assert model.ingest_report_.n_checkpoints == 2
        assert model.ingest_report_.n_seen == 220


class TestPipelineAndCliIntegration:
    def test_cluster_dataset_forwards_fault_kwargs(self, blob_data, tmp_path):
        from repro.pipelines import cluster_dataset

        points, _, _ = blob_data
        path = tmp_path / "scan.ckpt"
        result = cluster_dataset(
            points, EuclideanDistance(), n_clusters=5, max_nodes=20, seed=0,
            on_error="quarantine", checkpoint_path=path, checkpoint_every=100,
        )
        assert result.ingest_report.n_seen == len(points)
        assert result.ingest_report.n_checkpoints >= 1
        assert path.exists()

    def test_cli_checkpoint_and_resume(self, tmp_path, capsys):
        from repro.cli import main

        data = tmp_path / "data.csv"
        ckpt = tmp_path / "scan.ckpt"
        labels = tmp_path / "labels.txt"
        assert main([
            "generate", "ds2", str(data), "--n-points", "400",
            "--n-clusters", "10", "--seed", "1",
        ]) == 0
        assert main([
            "cluster", str(data), "--type", "vectors", "--max-nodes", "30",
            "--n-clusters", "10", "--checkpoint", str(ckpt),
            "--checkpoint-every", "100", "--seed", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "checkpoints written" in out
        assert ckpt.exists()
        assert main([
            "cluster", str(data), "--type", "vectors", "--max-nodes", "30",
            "--n-clusters", "10", "--resume-from", str(ckpt),
            "--output", str(labels), "--seed", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "resumed at object" in out
        assert labels.exists()

    def test_cli_budget_abort_exits_3(self, tmp_path, capsys):
        from repro.cli import main

        data = tmp_path / "data.csv"
        assert main([
            "generate", "ds2", str(data), "--n-points", "300",
            "--n-clusters", "5", "--seed", "1",
        ]) == 0
        code = main([
            "cluster", str(data), "--type", "vectors", "--max-nodes", "20",
            "--n-clusters", "5", "--max-distance-calls", "500", "--seed", "0",
        ])
        assert code == 3
        assert "scan aborted" in capsys.readouterr().err
