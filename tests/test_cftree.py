"""Unit tests for the CF*-tree: insertion, splitting, rebuild, invariants."""

import numpy as np
import pytest

from repro.core.bubble import BubblePolicy
from repro.core.cftree import CFTree
from repro.core.threshold import suggest_next_threshold
from repro.exceptions import ParameterError
from repro.metrics import EuclideanDistance


def make_tree(branching_factor=4, max_nodes=None, threshold=0.0, seed=0, **policy_kw):
    metric = EuclideanDistance()
    policy = BubblePolicy(metric, representation_number=4, sample_size=10, seed=seed, **policy_kw)
    return CFTree(
        policy,
        branching_factor=branching_factor,
        max_nodes=max_nodes,
        threshold=threshold,
        seed=seed,
    )


class TestConstruction:
    def test_requires_policy(self):
        with pytest.raises(ParameterError):
            CFTree("not a policy")

    def test_param_validation(self):
        metric = EuclideanDistance()
        policy = BubblePolicy(metric)
        with pytest.raises(ParameterError):
            CFTree(policy, branching_factor=1)
        with pytest.raises(ParameterError):
            CFTree(policy, max_nodes=2)
        with pytest.raises(ParameterError):
            CFTree(policy, threshold=-1.0)

    def test_starts_as_single_leaf(self):
        tree = make_tree()
        assert tree.n_nodes == 1
        assert tree.height == 1
        assert tree.n_clusters == 0


class TestInsertion:
    def test_single_insert(self):
        tree = make_tree()
        tree.insert(np.array([1.0, 1.0]))
        assert tree.n_objects == 1
        assert tree.n_clusters == 1
        tree.check_invariants()

    def test_duplicates_absorbed_at_zero_threshold(self):
        tree = make_tree(threshold=0.0)
        for _ in range(5):
            tree.insert(np.array([2.0, 3.0]))
        assert tree.n_clusters == 1
        assert tree.leaf_features()[0].n == 5

    def test_distinct_objects_make_distinct_clusters_at_zero_threshold(self):
        tree = make_tree(threshold=0.0)
        for i in range(3):
            tree.insert(np.array([float(i), 0.0]))
        assert tree.n_clusters == 3

    def test_threshold_absorbs_close_objects(self):
        tree = make_tree(threshold=0.5)
        tree.insert(np.array([0.0, 0.0]))
        tree.insert(np.array([0.3, 0.0]))  # within T of first
        tree.insert(np.array([5.0, 0.0]))  # far: new cluster
        assert tree.n_clusters == 2

    def test_split_grows_height(self):
        tree = make_tree(branching_factor=3, threshold=0.0)
        for i in range(4):
            tree.insert(np.array([float(i) * 10, 0.0]))
        assert tree.height == 2
        assert tree.n_nodes == 3  # root + two leaves
        tree.check_invariants()

    def test_many_inserts_keep_invariants(self):
        tree = make_tree(branching_factor=4)
        rng = np.random.default_rng(0)
        for _ in range(300):
            tree.insert(rng.normal(size=2))
        tree.check_invariants()
        assert tree.n_objects == 300

    def test_leaves_at_same_depth_after_growth(self):
        tree = make_tree(branching_factor=3, threshold=0.0)
        rng = np.random.default_rng(1)
        for _ in range(100):
            tree.insert(rng.uniform(0, 100, size=2))
        tree.check_invariants()
        assert tree.height >= 3


class TestRebuild:
    def test_rebuild_requires_larger_threshold(self):
        tree = make_tree(threshold=1.0)
        tree.insert(np.zeros(2))
        with pytest.raises(ParameterError):
            tree.rebuild(0.5)

    def test_rebuild_reduces_clusters(self):
        tree = make_tree(branching_factor=4, threshold=0.0)
        rng = np.random.default_rng(2)
        pts = [rng.normal(size=2) * 0.1 for _ in range(50)]
        for p in pts:
            tree.insert(p)
        before = tree.n_clusters
        tree.rebuild(1.0)
        assert tree.n_clusters < before
        tree.check_invariants()

    def test_rebuild_conserves_population(self):
        tree = make_tree(branching_factor=4, threshold=0.0)
        rng = np.random.default_rng(3)
        for _ in range(80):
            tree.insert(rng.normal(size=2))
        tree.rebuild(0.8)
        assert sum(f.n for f in tree.leaf_features()) == 80

    def test_max_nodes_triggers_automatic_rebuild(self):
        tree = make_tree(branching_factor=4, max_nodes=5, threshold=0.0)
        rng = np.random.default_rng(4)
        for _ in range(200):
            tree.insert(rng.uniform(0, 50, size=2))
        assert tree.n_nodes <= 5
        assert tree.n_rebuilds >= 1
        assert tree.threshold > 0.0
        tree.check_invariants()

    def test_threshold_grows_monotonically(self):
        tree = make_tree(branching_factor=4, max_nodes=5, threshold=0.0)
        rng = np.random.default_rng(5)
        last_t = 0.0
        for _ in range(300):
            tree.insert(rng.uniform(0, 100, size=2))
            assert tree.threshold >= last_t
            last_t = tree.threshold


class TestThresholdHeuristic:
    def test_suggests_positive_after_data(self):
        tree = make_tree(branching_factor=4, threshold=0.0)
        rng = np.random.default_rng(6)
        for _ in range(60):
            tree.insert(rng.normal(size=2))
        t = suggest_next_threshold(tree, seed=0)
        assert t > 0.0

    def test_strictly_increases(self):
        tree = make_tree(branching_factor=4, threshold=0.7)
        for i in range(40):
            tree.insert(np.array([float(i * 10), 0.0]))
        t = suggest_next_threshold(tree, seed=0)
        assert t > 0.7

    def test_degenerate_single_cluster(self):
        tree = make_tree(threshold=0.0)
        tree.insert(np.zeros(2))
        t = suggest_next_threshold(tree, seed=0)
        assert t > 0.0  # tiny but positive


class TestIntrospection:
    def test_leaf_features_round_trip(self):
        tree = make_tree(threshold=0.0)
        for i in range(5):
            tree.insert(np.array([float(i), 0.0]))
        feats = tree.leaf_features()
        assert len(feats) == 5
        assert {float(np.asarray(f.clustroid)[0]) for f in feats} == {0, 1, 2, 3, 4}

    def test_repr(self):
        tree = make_tree()
        tree.insert(np.zeros(2))
        assert "CFTree" in repr(tree)


class TestTypeII:
    def test_insert_feature_merges_within_threshold(self):
        tree = make_tree(threshold=1.0)
        tree.insert(np.array([0.0, 0.0]))
        other = tree.policy.new_leaf_feature(np.array([0.5, 0.0]))
        tree.insert_feature(other)
        assert tree.n_clusters == 1
        assert tree.leaf_features()[0].n == 2

    def test_insert_feature_new_cluster_beyond_threshold(self):
        tree = make_tree(threshold=0.1)
        tree.insert(np.array([0.0, 0.0]))
        other = tree.policy.new_leaf_feature(np.array([5.0, 0.0]))
        tree.insert_feature(other)
        assert tree.n_clusters == 2
