"""Unit tests for Minkowski-family vector metrics."""

import numpy as np
import pytest

from repro.exceptions import MetricError, ParameterError
from repro.metrics import (
    ChebyshevDistance,
    EuclideanDistance,
    ManhattanDistance,
    MinkowskiDistance,
)


class TestEuclidean:
    def test_known_value(self):
        m = EuclideanDistance()
        assert m.distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_zero_distance(self):
        m = EuclideanDistance()
        assert m.distance([1.5, -2.0], [1.5, -2.0]) == 0.0

    def test_one_to_many_matches_scalar(self):
        m = EuclideanDistance()
        rng = np.random.default_rng(0)
        obj = rng.normal(size=5)
        others = list(rng.normal(size=(10, 5)))
        batch = m.one_to_many(obj, others)
        scalars = [m._distance(obj, o) for o in others]
        np.testing.assert_allclose(batch, scalars)

    def test_one_to_many_accepts_2d_array(self):
        m = EuclideanDistance()
        mat = np.arange(12, dtype=float).reshape(4, 3)
        out = m.one_to_many(np.zeros(3), mat)
        assert out.shape == (4,)

    def test_dimension_mismatch_raises(self):
        m = EuclideanDistance()
        with pytest.raises(MetricError):
            m.one_to_many(np.zeros(2), [np.zeros(3)])

    def test_pairwise_matches_scalar(self):
        m = EuclideanDistance()
        rng = np.random.default_rng(1)
        pts = list(rng.normal(size=(8, 3)))
        dm = m.pairwise(pts)
        for i in range(8):
            for j in range(8):
                assert dm[i, j] == pytest.approx(m._distance(pts[i], pts[j]), abs=1e-9)

    def test_pairwise_no_negative_sqrt(self):
        # Identical points can yield tiny negative d^2 from cancellation.
        m = EuclideanDistance()
        pts = [np.array([1e8, 1e8])] * 3
        dm = m.pairwise(pts)
        assert np.all(np.isfinite(dm))
        assert np.all(dm >= 0)


class TestManhattanChebyshev:
    def test_manhattan_known(self):
        assert ManhattanDistance().distance([0, 0], [3, 4]) == pytest.approx(7.0)

    def test_chebyshev_known(self):
        assert ChebyshevDistance().distance([0, 0], [3, 4]) == pytest.approx(4.0)

    def test_chebyshev_batch_matches_scalar(self):
        m = ChebyshevDistance()
        rng = np.random.default_rng(2)
        obj = rng.normal(size=4)
        others = list(rng.normal(size=(6, 4)))
        np.testing.assert_allclose(
            m.one_to_many(obj, others), [m._distance(obj, o) for o in others]
        )


class TestMinkowski:
    @pytest.mark.parametrize("p", [1.0, 1.5, 2.0, 3.0])
    def test_batch_matches_scalar(self, p):
        m = MinkowskiDistance(p)
        rng = np.random.default_rng(3)
        obj = rng.normal(size=4)
        others = list(rng.normal(size=(7, 4)))
        np.testing.assert_allclose(
            m.one_to_many(obj, others),
            [m._distance(obj, o) for o in others],
            rtol=1e-9,
        )

    def test_rejects_p_below_one(self):
        with pytest.raises(ParameterError):
            MinkowskiDistance(0.5)

    def test_rejects_nan_p(self):
        with pytest.raises(ParameterError):
            MinkowskiDistance(float("nan"))

    def test_p_order_monotone(self):
        # For the same pair, Lp distance is non-increasing in p.
        a, b = np.zeros(4), np.ones(4)
        d = [MinkowskiDistance(p).distance(a, b) for p in (1, 2, 4)]
        assert d[0] >= d[1] >= d[2]

    @pytest.mark.parametrize("p", [1.5, 3.0])
    def test_pairwise_general_p(self, p):
        m = MinkowskiDistance(p)
        rng = np.random.default_rng(4)
        pts = list(rng.normal(size=(5, 3)))
        dm = m.pairwise(pts)
        assert dm[1, 2] == pytest.approx(m._distance(pts[1], pts[2]))
