"""Failure injection: misbehaving metrics must fail loudly and leave
recoverable state, never corrupt results silently."""

import numpy as np
import pytest

from repro import BUBBLE, BUBBLEFM
from repro.core.bubble import BubblePolicy
from repro.core.cftree import CFTree
from repro.metrics import FunctionDistance
from repro.metrics.base import DistanceFunction


class FlakyMetric(DistanceFunction):
    """Euclidean distance that raises after a set number of calls."""

    name = "flaky"

    def __init__(self, fail_after: int):
        super().__init__()
        self.fail_after = fail_after

    def _distance(self, a, b) -> float:
        if self._n_calls > self.fail_after:
            raise RuntimeError("metric backend went away")
        return float(np.linalg.norm(np.asarray(a) - np.asarray(b)))


class TestMetricFailures:
    def test_error_propagates_from_fit(self, rng):
        points = list(rng.normal(size=(200, 2)))
        metric = FlakyMetric(fail_after=150)
        with pytest.raises(RuntimeError, match="went away"):
            BUBBLE(metric, max_nodes=10, seed=0).fit(points)

    def test_tree_survives_failed_insert(self, rng):
        """A failed insertion aborts, but earlier state remains queryable."""
        metric = FlakyMetric(fail_after=10_000)
        policy = BubblePolicy(metric, representation_number=4, sample_size=8, seed=0)
        tree = CFTree(policy, branching_factor=4, threshold=0.5, seed=0)
        inserted = 0
        try:
            for p in rng.normal(size=(5000, 2)):
                tree.insert(p)
                inserted += 1
        except RuntimeError:
            pass
        assert 0 < inserted < 5000
        # Structure is still sound (object count may be off by the one
        # aborted insert, so verify structure manually).
        clusters = tree.leaf_features()
        assert clusters
        assert all(f.n >= 1 for f in clusters)

    def test_nan_distances_fail_loudly_not_forever(self, rng):
        """A metric emitting NaN is a contract violation; the tree must not
        loop forever (a NaN threshold once made the rebuild loop spin) —
        it either completes or raises a clear invariant error."""
        from repro.exceptions import TreeInvariantError

        calls = {"n": 0}

        def sometimes_nan(a, b):
            calls["n"] += 1
            if calls["n"] % 97 == 0:
                return float("nan")
            return float(np.linalg.norm(np.asarray(a) - np.asarray(b)))

        metric = FunctionDistance(sometimes_nan, name="nan-metric")
        model = BUBBLE(metric, max_nodes=10, seed=0)
        try:
            model.fit(list(rng.normal(size=(300, 2))))
            assert model.tree_.n_objects == 300
        except TreeInvariantError as exc:
            assert "not finite" in str(exc)

    def test_negative_distance_contract_violation_detected(self):
        """BUBBLE trusts the metric; a negative distance shows up as a
        negative radius estimate being clamped, not as a crash."""
        metric = FunctionDistance(lambda a, b: -1.0, name="broken")
        model = BUBBLE(metric, threshold=10.0, seed=0)
        model.fit(["a", "b", "c"])
        for sub in model.subclusters_:
            assert sub.radius >= 0.0

    def test_bubble_fm_error_propagates_during_mapping(self, rng):
        points = list(rng.uniform(0, 100, size=(500, 2)))
        metric = FlakyMetric(fail_after=2_000)
        with pytest.raises(RuntimeError):
            BUBBLEFM(metric, max_nodes=8, image_dim=2, seed=0).fit(points)


class TestObjectContract:
    def test_unhashable_objects_supported(self, rng):
        """Objects never need to be hashable (lists work)."""
        metric = FunctionDistance(
            lambda a, b: abs(sum(a) - sum(b)), name="sumdiff"
        )
        points = [[float(i), float(i % 3)] for i in range(100)]
        model = BUBBLE(metric, threshold=0.5, seed=0).fit(points)
        assert model.tree_.n_objects == 100

    def test_none_objects_rejected_by_vector_metric(self):
        from repro.exceptions import MetricError
        from repro.metrics import EuclideanDistance

        model = BUBBLE(EuclideanDistance(), seed=0)
        with pytest.raises((MetricError, TypeError, ValueError)):
            model.fit([np.zeros(2), None, np.zeros(2)])
