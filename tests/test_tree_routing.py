"""Unit tests for read-only tree routing and the split image-space reuse."""

import numpy as np
import pytest

from repro import BUBBLE, BUBBLEFM
from repro.core.bubble_fm import BubbleFMPolicy, _FMSampleCache
from repro.core.cftree import CFTree
from repro.exceptions import ParameterError
from repro.metrics import EuclideanDistance


class TestNearestLeafFeature:
    def test_routes_to_containing_cluster(self, euclidean, blob_data):
        points, _, centers = blob_data
        model = BUBBLE(euclidean, max_nodes=10, seed=0).fit(points)
        tree = model.tree_
        for c in centers:
            feature = tree.nearest_leaf_feature(c)
            assert np.linalg.norm(np.asarray(feature.clustroid) - c) < 2.0

    def test_does_not_mutate_tree(self, euclidean, blob_data):
        points, _, _ = blob_data
        model = BUBBLE(euclidean, max_nodes=10, seed=0).fit(points)
        tree = model.tree_
        before = [(f.n, f.radius) for f in tree.leaf_features()]
        for p in points[:50]:
            tree.nearest_leaf_feature(p)
        after = [(f.n, f.radius) for f in tree.leaf_features()]
        assert before == after

    def test_empty_tree_rejected(self, euclidean):
        from repro.core.bubble import BubblePolicy

        tree = CFTree(BubblePolicy(euclidean))
        with pytest.raises(ParameterError):
            tree.nearest_leaf_feature(np.zeros(2))


class TestAssignVia:
    def test_tree_assignment_mostly_matches_linear(self, blob_data):
        points, _, _ = blob_data
        model = BUBBLE(EuclideanDistance(), max_nodes=10, seed=0).fit(points)
        lin = model.assign(points, via="linear")
        tre = model.assign(points, via="tree")
        agreement = float(np.mean(lin == tre))
        assert agreement > 0.8  # tree routing is approximate but close

    def test_tree_assignment_cheaper(self):
        # Many sub-clusters: a linear scan costs O(K) per object, the tree
        # O(samples per path); the gap shows once K is in the hundreds.
        rng = np.random.default_rng(3)
        points = list(rng.uniform(0, 1000, size=(1200, 2)))
        metric = EuclideanDistance()
        model = BUBBLE(
            metric, branching_factor=8, sample_size=30, max_nodes=100, seed=0
        ).fit(points)
        assert model.n_subclusters_ > 100
        points = points[:100]
        before = metric.n_calls
        model.assign(points, via="linear")
        linear_cost = metric.n_calls - before
        before = metric.n_calls
        model.assign(points, via="tree")
        tree_cost = metric.n_calls - before
        assert tree_cost < linear_cost

    def test_unknown_via_rejected(self, euclidean, blob_data):
        points, _, _ = blob_data
        model = BUBBLE(euclidean, max_nodes=10, seed=0).fit(points)
        with pytest.raises(ParameterError):
            model.assign(points, via="magic")

    def test_labels_in_range(self, blob_data):
        points, _, _ = blob_data
        model = BUBBLEFM(EuclideanDistance(), max_nodes=10, image_dim=2, seed=0).fit(points)
        labels = model.assign(points, via="tree")
        assert labels.min() >= 0
        assert labels.max() < model.n_subclusters_


class TestSplitImageReuse:
    def test_split_halves_share_parent_fastmap(self):
        rng = np.random.default_rng(0)
        metric = EuclideanDistance()
        policy = BubbleFMPolicy(metric, sample_size=30, image_dim=2, seed=0)
        tree = CFTree(policy, branching_factor=4, threshold=0.0, seed=0)
        # Grow until at least one non-leaf split has occurred (height >= 3).
        i = 0
        while tree.height < 3 and i < 3000:
            tree.insert(rng.uniform(0, 1000, size=2))
            i += 1
        assert tree.height >= 3
        tree.check_invariants()
        # Non-root internal nodes exist and have usable caches.
        internal = []
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if not node.is_leaf:
                internal.append(node)
                stack.extend(e.child for e in node.entries)
        assert len(internal) >= 3
        for node in internal:
            cache = node.aux
            assert isinstance(cache, _FMSampleCache)
            if cache.mapper is not None:
                assert cache.centroids.shape == (len(node.entries), 2)
                # Centroids must be consistent with the cached images.
                for i_e in range(len(node.entries)):
                    seg = cache.images[cache.offsets[i_e] : cache.offsets[i_e + 1]]
                    np.testing.assert_allclose(
                        cache.centroids[i_e], seg.mean(axis=0), atol=1e-9
                    )

    def test_routing_still_works_after_deep_growth(self):
        rng = np.random.default_rng(1)
        metric = EuclideanDistance()
        model = BUBBLEFM(
            metric, branching_factor=4, sample_size=20, image_dim=2, seed=1
        ).fit(list(rng.uniform(0, 500, size=(800, 2))))
        tree = model.tree_
        assert tree.height >= 3
        labels = model.assign(list(rng.uniform(0, 500, size=(20, 2))), via="tree")
        assert labels.shape == (20,)
