"""Unit tests for disk-backed dataset streaming."""

import numpy as np
import pytest

from repro import BUBBLE
from repro.datasets import (
    make_cell_dataset,
    stream_strings,
    stream_vectors,
    write_string_file,
    write_vector_file,
)
from repro.exceptions import ParameterError
from repro.metrics import EuclideanDistance


class TestVectorIO:
    def test_round_trip(self, tmp_path):
        ds = make_cell_dataset(dim=3, n_clusters=2, n_points=50, seed=0)
        path = tmp_path / "points.csv"
        n = write_vector_file(path, ds.as_objects())
        assert n == 50
        back = list(stream_vectors(path))
        assert len(back) == 50
        np.testing.assert_allclose(np.vstack(back), ds.points)

    def test_rejects_matrix(self, tmp_path):
        with pytest.raises(ParameterError):
            write_vector_file(tmp_path / "bad.csv", [np.zeros((2, 2))])

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0,2.0\nnot,a,number\n")
        with pytest.raises(ParameterError):
            list(stream_vectors(path))

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "pts.csv"
        path.write_text("1.0,2.0\n\n3.0,4.0\n")
        assert len(list(stream_vectors(path))) == 2

    def test_streaming_fit_single_scan(self, tmp_path):
        """BUBBLE consumes the stream directly — the single-scan property."""
        ds = make_cell_dataset(dim=2, n_clusters=3, n_points=300, seed=1)
        path = tmp_path / "pts.csv"
        write_vector_file(path, ds.as_objects())
        model = BUBBLE(EuclideanDistance(), max_nodes=10, seed=0).fit(
            stream_vectors(path)
        )
        assert model.tree_.n_objects == 300


class TestStringIO:
    def test_round_trip(self, tmp_path):
        strings = ["alpha", "beta, gamma", "  leading spaces kept"]
        path = tmp_path / "records.txt"
        assert write_string_file(path, strings) == 3
        assert list(stream_strings(path)) == strings

    def test_rejects_newlines(self, tmp_path):
        with pytest.raises(ParameterError):
            write_string_file(tmp_path / "bad.txt", ["a\nb"])

    def test_empty_records_preserved(self, tmp_path):
        path = tmp_path / "records.txt"
        write_string_file(path, ["", "x", ""])
        assert list(stream_strings(path)) == ["", "x", ""]
