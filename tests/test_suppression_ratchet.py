"""Ratchets on reprolint suppression counts.

The BETULA refactor replaced every ``ss - n*|c|^2``-style catastrophic
cancellation in the CF* code with stable incremental forms (Welford/Chan
in ``birch/cf.py``, compensated slab RowSums in ``core/features.py``), so
the ``BETULA:`` marker that tagged "known-unstable, rewrite pending"
suppressions must never reappear. The irreducible remainder — FastMap's
cosine-law projection and Landmark-MDS double-centering, which are
*defined* on squared distances and accumulate nothing — is pinned site by
site. These counts may only go down; growing them means a new suppression
slipped in and needs the same scrutiny the originals got.
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).parent.parent / "src"

#: The only RPL105 suppressions allowed to remain, pinned per file.
#: Each is a single-shot geometric formula defined on squared distances
#: (no running accumulation), so no stable incremental rewrite exists.
ALLOWED_RPL105 = {
    "repro/fastmap/fastmap.py": 2,
    "repro/fastmap/landmark.py": 1,
}


def _python_sources() -> list[Path]:
    return sorted(SRC.rglob("*.py"))


def _count(pattern: str, text: str) -> int:
    return len(re.findall(pattern, text))


def test_betula_marker_is_gone() -> None:
    """Zero ``BETULA:`` markers: every tagged suppression was rewritten
    into a stable form or re-justified as irreducible without the tag."""
    offenders = [
        str(path.relative_to(SRC))
        for path in _python_sources()
        if "BETULA:" in path.read_text()
    ]
    assert offenders == []


def test_rpl105_suppressions_pinned_to_irreducible_sites() -> None:
    census = {
        str(path.relative_to(SRC)): n
        for path in _python_sources()
        if (n := _count(r"disable=RPL105", path.read_text()))
    }
    assert census == ALLOWED_RPL105


def test_remaining_rpl105_suppressions_carry_justifications() -> None:
    """Every surviving suppression must say *why* it is irreducible —
    a bare ``disable=RPL105`` with no rationale is not acceptable."""
    for rel in ALLOWED_RPL105:
        for line in (SRC / rel).read_text().splitlines():
            if "disable=RPL105" in line:
                assert "irreducible" in line, f"{rel}: unjustified suppression"


def test_total_suppression_count_only_ratchets_down() -> None:
    """Global ceiling across all reprolint rules. Lower it when
    suppressions are removed; never raise it without removing the need."""
    total = sum(
        _count(r"reprolint:\s*disable=RPL\d+", path.read_text())
        for path in _python_sources()
    )
    assert total <= 17, (
        f"{total} reprolint suppressions in src/ — the ratchet allows at "
        "most 17. Rewrite the code instead of suppressing the rule."
    )
