"""Tests for ``repro.utils.numerics`` — compensated (Neumaier) accumulation.

The drift properties pin the module's reason to exist: on adversarial
magnitude-spread streams (one huge addend swallowing many small ones),
naive ``+=`` accumulation loses the small addends entirely while the
compensated forms stay within a few eps of ``math.fsum``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.numerics import CompensatedAccumulator, compensated_add, neumaier_sum


def naive_sum(values):
    total = 0.0
    for v in values:
        total += v
    return total


def rel_err(got: float, want: float) -> float:
    return abs(got - want) / max(abs(want), 1.0)


def adversarial_stream(huge: float, n_small: int, small: float) -> list[float]:
    """One huge addend followed by many small ones below its ulp."""
    return [huge] + [small] * n_small


# ----------------------------------------------------------------------
# Scalar accumulator
# ----------------------------------------------------------------------
class TestCompensatedAccumulator:
    def test_recovers_swallowed_addends(self):
        acc = CompensatedAccumulator()
        acc.add(1e16)
        for _ in range(1000):
            acc.add(1.0)
        assert acc.value == 1e16 + 1000.0
        # The same stream through naive += loses every small addend.
        assert naive_sum(adversarial_stream(1e16, 1000, 1.0)) == 1e16

    def test_add_many_matches_repeated_add(self):
        values = np.array([1e16, 1.0, -2.0, 3.5, 1e-8])
        a = CompensatedAccumulator()
        a.add_many(values)
        b = CompensatedAccumulator()
        for v in values:
            b.add(float(v))
        assert a.value == b.value
        assert a.total == b.total and a.compensation == b.compensation

    def test_merge_keeps_both_compensations(self):
        a = CompensatedAccumulator(1e16)
        for _ in range(500):
            a.add(1.0)
        b = CompensatedAccumulator()
        for _ in range(500):
            b.add(1.0)
        a.merge(b)
        assert a.value == 1e16 + 1000.0

    def test_copy_is_independent(self):
        a = CompensatedAccumulator(2.0)
        dup = a.copy()
        dup.add(5.0)
        assert a.value == 2.0
        assert dup.value == 7.0

    def test_state_round_trips(self):
        a = CompensatedAccumulator(1e16)
        a.add(1.0)
        b = CompensatedAccumulator(a.total, a.compensation)
        assert b.value == a.value

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=10, max_value=2000),
        spread=st.integers(min_value=6, max_value=14),
    )
    def test_drift_beats_naive_on_magnitude_spreads(self, seed, n, spread):
        """Compensated error stays ~eps while naive error grows with the
        magnitude spread — the BETULA failure mode at large n."""
        rng = np.random.default_rng(seed)
        values = [10.0**spread] + list(rng.uniform(0.1, 1.0, size=n))
        want = math.fsum(values)
        acc = CompensatedAccumulator()
        for v in values:
            acc.add(v)
        comp_err = rel_err(acc.value, want)
        naive_err = rel_err(naive_sum(values), want)
        assert comp_err <= 1e-15
        assert comp_err <= naive_err


# ----------------------------------------------------------------------
# One-shot sum
# ----------------------------------------------------------------------
class TestNeumaierSum:
    def test_matches_fsum_on_adversarial_stream(self):
        values = adversarial_stream(1e16, 5000, 0.25)
        assert neumaier_sum(np.array(values)) == math.fsum(values)

    def test_empty_and_single(self):
        assert neumaier_sum(np.array([])) == 0.0
        assert neumaier_sum(np.array([3.75])) == 3.75

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=1, max_value=500),
    )
    def test_matches_fsum_within_eps(self, seed, n):
        rng = np.random.default_rng(seed)
        values = rng.normal(scale=10.0 ** rng.integers(0, 12), size=n)
        want = math.fsum(values)
        assert rel_err(neumaier_sum(values), want) <= 1e-14


# ----------------------------------------------------------------------
# Vectorized in-place update (the slab RowSum primitive)
# ----------------------------------------------------------------------
class TestCompensatedAdd:
    def test_slots_update_independently(self):
        sums = np.array([1e16, 0.0, -3.0])
        comps = np.zeros(3)
        compensated_add(sums, comps, np.array([1.0, 2.0, 4.0]))
        assert (sums + comps).tolist() == [1e16 + 1.0, 2.0, 1.0]

    def test_recovers_swallowed_addends_per_slot(self):
        sums = np.array([1e16, 1e16])
        comps = np.zeros(2)
        for _ in range(5000):
            compensated_add(sums, comps, np.array([0.25, 1.0]))
        assert sums[0] + comps[0] == 1e16 + 5000 * 0.25
        assert sums[1] + comps[1] == 1e16 + 5000.0

    def test_works_on_slab_row_views(self):
        slab_s = np.zeros((4, 3))
        slab_c = np.zeros((4, 3))
        compensated_add(slab_s[2, :2], slab_c[2, :2], np.array([1e16, 5.0]))
        compensated_add(slab_s[2, :2], slab_c[2, :2], np.array([1.0, 5.0]))
        assert slab_s[2, 0] + slab_c[2, 0] == 1e16 + 1.0
        assert slab_s[2, 1] + slab_c[2, 1] == 10.0
        # Untouched rows and the slot past the view stay zero.
        assert not slab_s[[0, 1, 3]].any() and slab_s[2, 2] == 0.0

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        width=st.integers(min_value=1, max_value=10),
        n_updates=st.integers(min_value=1, max_value=300),
    )
    def test_each_slot_matches_scalar_accumulator(self, seed, width, n_updates):
        rng = np.random.default_rng(seed)
        deltas = rng.uniform(0.0, 2.0, size=(n_updates, width))
        deltas[0] = 10.0 ** rng.integers(10, 16)  # adversarial first row
        sums = np.zeros(width)
        comps = np.zeros(width)
        scalars = [CompensatedAccumulator() for _ in range(width)]
        for row in deltas:
            compensated_add(sums, comps, row)
            for acc, d in zip(scalars, row):
                acc.add(float(d))
        for i, acc in enumerate(scalars):
            assert sums[i] + comps[i] == pytest.approx(acc.value, rel=1e-15, abs=0.0)
