"""Unit and property tests for the angular and Canberra metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MetricError
from repro.metrics import AngularDistance, CanberraDistance

nonzero_vectors = st.lists(
    st.floats(min_value=-10, max_value=10, allow_nan=False),
    min_size=3,
    max_size=3,
).map(np.asarray).filter(lambda v: np.linalg.norm(v) > 1e-6)

any_vectors = st.lists(
    st.floats(min_value=-10, max_value=10, allow_nan=False),
    min_size=3,
    max_size=3,
).map(np.asarray)


class TestAngular:
    def test_orthogonal(self):
        d = AngularDistance().distance([1.0, 0.0], [0.0, 1.0])
        assert d == pytest.approx(0.5)

    def test_parallel(self):
        assert AngularDistance().distance([1.0, 1.0], [2.0, 2.0]) == pytest.approx(0.0, abs=1e-6)

    def test_antiparallel(self):
        assert AngularDistance().distance([1.0, 0.0], [-1.0, 0.0]) == pytest.approx(1.0)

    def test_scale_invariant(self):
        m = AngularDistance()
        assert m.distance([1.0, 2.0], [3.0, 1.0]) == pytest.approx(
            m.distance([10.0, 20.0], [0.3, 0.1]), abs=1e-9
        )

    def test_zero_vector_rejected(self):
        with pytest.raises(MetricError):
            AngularDistance().distance([0.0, 0.0], [1.0, 0.0])
        with pytest.raises(MetricError):
            AngularDistance().one_to_many([1.0, 0.0], [np.zeros(2)])

    def test_batch_matches_scalar(self):
        m = AngularDistance()
        rng = np.random.default_rng(0)
        obj = rng.normal(size=4)
        others = list(rng.normal(size=(6, 4)))
        np.testing.assert_allclose(
            m.one_to_many(obj, others),
            [m._distance(obj, o) for o in others],
            atol=1e-12,
        )

    @given(a=nonzero_vectors, b=nonzero_vectors, c=nonzero_vectors)
    @settings(max_examples=120, deadline=None)
    def test_metric_axioms(self, a, b, c):
        m = AngularDistance()
        dab, dba = m.distance(a, b), m.distance(b, a)
        assert dab == pytest.approx(dba)
        assert 0.0 <= dab <= 1.0
        # arccos is ill-conditioned near +/-1: each call can be off by
        # ~sqrt(eps)/pi =~ 5e-9, so the slack must exceed a few of those.
        assert dab <= m.distance(a, c) + m.distance(c, b) + 1e-7


class TestCanberra:
    def test_known(self):
        # |1-3|/(1+3) + |2-2|/(2+2) = 0.5
        assert CanberraDistance().distance([1.0, 2.0], [3.0, 2.0]) == pytest.approx(0.5)

    def test_zero_zero_coordinate_ignored(self):
        assert CanberraDistance().distance([0.0, 1.0], [0.0, 1.0]) == 0.0

    def test_bounded_by_dimension(self):
        rng = np.random.default_rng(1)
        m = CanberraDistance()
        for _ in range(10):
            a, b = rng.normal(size=5), rng.normal(size=5)
            assert m.distance(a, b) <= 5.0 + 1e-12

    def test_batch_matches_scalar(self):
        m = CanberraDistance()
        rng = np.random.default_rng(2)
        obj = rng.normal(size=4)
        others = list(rng.normal(size=(6, 4)))
        np.testing.assert_allclose(
            m.one_to_many(obj, others),
            [m._distance(obj, o) for o in others],
            atol=1e-12,
        )

    @given(a=any_vectors, b=any_vectors)
    @settings(max_examples=120, deadline=None)
    def test_symmetry_nonnegativity(self, a, b):
        m = CanberraDistance()
        dab = m.distance(a, b)
        assert dab >= 0
        assert dab == pytest.approx(m.distance(b, a))
        assert m.distance(a, a) == 0.0


class TestWithBubble:
    def test_bubble_clusters_by_direction(self):
        from repro import BUBBLE

        rng = np.random.default_rng(3)
        # Two direction families, arbitrary magnitudes.
        dirs = [np.array([1.0, 0.05]), np.array([0.05, 1.0])]
        points, truth = [], []
        for label, d in enumerate(dirs):
            for _ in range(60):
                scale = rng.uniform(0.5, 50.0)
                noise = 0.02 * rng.normal(size=2)
                points.append(scale * (d + noise))
                truth.append(label)
        order = rng.permutation(len(points))
        points = [points[i] for i in order]
        truth = np.asarray(truth)[order]

        model = BUBBLE(AngularDistance(), threshold=0.05, seed=0).fit(points)
        labels = model.assign(points)
        from repro.evaluation import adjusted_rand_index

        # Sub-clusters may split a family; merged via majority they align.
        from repro.evaluation import misplaced_count

        assert misplaced_count(truth, labels) <= 3
