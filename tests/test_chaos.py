"""Chaos drills for the fault-tolerant parallel build.

Every test follows the same shape: a *clean* reference build with no
faults, then the same build under a seeded :class:`ChaosPolicy` schedule —
worker SIGKILL mid-shard, flaky metric, pathologically slow shard, corrupt
shard checkpoint. The invariant under test is the tentpole contract of
``docs/robustness.md``: after every recoverable fault the merged tree is
**bit-identical** to the uninterrupted run, audit-clean, and the NCD
conservation law ``sum(by_site) == n_calls`` holds.

Kill drills need real worker processes (``n_jobs > 1``) — an unarmed or
in-parent policy never kills, by design. Flaky drills run inline too,
which is what the hypothesis sweep exploits for speed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.preclusterer import BUBBLE
from repro.exceptions import WorkerCrashError
from repro.metrics import EuclideanDistance
from repro.observability import Tracer
from repro.parallel import parallel_fit
from repro.parallel.pool import ShardSupervisor
from repro.parallel.worker import ShardTask
from repro.robustness import ChaosPolicy, FlakyMetric

__all__: list[str] = []


def tree_signature(tree):
    """Structure + leaf clustroids, byte-exact — equal iff trees identical."""
    sig = []

    def walk(node):
        if node.is_leaf:
            sig.append(
                tuple(repr(np.asarray(f.clustroid).tolist()) for f in node.entries)
            )
        else:
            sig.append(len(node.entries))
            for entry in node.entries:
                walk(entry.child)

    walk(tree.root)
    return sig


def make_blobs(n=120, seed=3, n_centers=5, dim=2):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, 20.0, size=(n_centers, dim))
    return [
        centers[i % n_centers] + 0.4 * rng.normal(size=dim) for i in range(n)
    ]


def build(points, *, n_shards=3, n_jobs=1, tracer=None, **fit_kwargs):
    """One parallel build with fast retry backoff; returns the model."""
    model = BUBBLE(
        EuclideanDistance(),
        max_nodes=12,
        seed=5,
        n_shards=n_shards,
        n_jobs=n_jobs,
        shard_retry_backoff=0.01,
        tracer=tracer if tracer is not None else Tracer(),
    )
    return parallel_fit(model, points, **fit_kwargs)


def assert_conserved(model):
    """The site-attributed ledger must partition the metric's NCD exactly."""
    by_site = model.tracer.calls_by_site
    assert sum(by_site.values()) == model.metric.n_calls


class TestKillRecovery:
    def test_sigkill_with_checkpoint_resumes_bit_identical(self, tmp_path, audit):
        # The acceptance drill: a worker is SIGKILLed mid-shard, the retry
        # resumes from the shard's atomic checkpoint, and the merged tree
        # is byte-identical to the uninterrupted run.
        points = make_blobs(n=120)
        clean = build(points)

        chaos = ChaosPolicy(kill_at={1: 35}, seed=7)
        model = build(
            points,
            n_jobs=2,
            checkpoint_path=tmp_path / "ck",
            checkpoint_every=10,
            chaos=chaos,
        )
        assert tree_signature(model.tree_) == tree_signature(clean.tree_)
        audit(model.tree_)
        assert_conserved(model)

        report = model.ingest_report_
        assert report.workers_crashed >= 1
        assert report.shards_retried >= 1
        assert report.shards_resumed >= 1
        assert report.backoff_seconds_total > 0
        resumed = [s for s in model.shard_summaries_ if s["resumed_at"] is not None]
        assert any(s["shard_id"] == 1 for s in resumed)

    def test_sigkill_without_checkpoint_rescans_from_zero(self, audit):
        # No checkpoint directory: recovery degrades to a deterministic
        # full rescan of the lost shard, still bit-identical.
        points = make_blobs(n=120)
        clean = build(points)

        chaos = ChaosPolicy(kill_at={0: 25}, seed=11)
        model = build(points, n_jobs=2, chaos=chaos)
        assert tree_signature(model.tree_) == tree_signature(clean.tree_)
        audit(model.tree_)
        assert_conserved(model)
        assert model.ingest_report_.workers_crashed >= 1
        assert model.ingest_report_.shards_resumed == 0

    def test_persistent_killer_degrades_to_inline_fallback(self, audit):
        # A kill schedule that fires on *every* worker attempt exhausts the
        # retries; the supervisor's last stand runs the shard in-parent,
        # where an armed policy never kills — graceful degradation.
        points = make_blobs(n=90)
        clean = build(points)

        chaos = ChaosPolicy(kill_at={2: 10}, kill_attempts=99, seed=13)
        model = build(points, n_jobs=2, chaos=chaos)
        assert tree_signature(model.tree_) == tree_signature(clean.tree_)
        audit(model.tree_)
        assert_conserved(model)
        # max_shard_retries=2 → attempts 0,1,2 killed, then the fallback.
        assert model.ingest_report_.workers_crashed == 3
        assert model.ingest_report_.shards_retried == 2


class TestMetricFaults:
    def test_flaky_shard_retried_to_identical_tree(self, audit):
        points = make_blobs(n=90)
        clean = build(points)

        chaos = ChaosPolicy(flaky_shards=(1,), flaky_rate=1.0, seed=3)
        model = build(points, chaos=chaos)
        assert tree_signature(model.tree_) == tree_signature(clean.tree_)
        audit(model.tree_)
        assert_conserved(model)
        assert model.ingest_report_.shards_retried >= 1
        assert model.ingest_report_.workers_crashed == 0

    def test_slow_shard_killed_by_timeout_and_retried(self, audit):
        # Shard 1's metric sleeps per call, overrunning the per-shard
        # timeout; the straggler is killed individually and the clean
        # retry still merges bit-identically.
        points = make_blobs(n=40)
        clean = build(points, n_shards=2)

        chaos = ChaosPolicy(slow_shards=(1,), slow_seconds=0.05, seed=5)
        model = BUBBLE(
            EuclideanDistance(),
            max_nodes=12,
            seed=5,
            n_shards=2,
            n_jobs=2,
            shard_retry_backoff=0.01,
            shard_timeout_seconds=1.0,
            tracer=Tracer(),
        )
        parallel_fit(model, points, chaos=chaos)
        assert tree_signature(model.tree_) == tree_signature(clean.tree_)
        audit(model.tree_)
        assert_conserved(model)
        assert model.ingest_report_.workers_crashed >= 1
        assert model.ingest_report_.shards_retried >= 1


class TestCorruptCheckpoint:
    def test_corrupt_shard_checkpoint_discarded_and_rescanned(self, tmp_path, audit):
        # The worker dies, the chaos policy then corrupts the checkpoint
        # the retry would resume from; the retry must detect the damage,
        # discard it, and rescan the shard from zero — not crash, not
        # resume into garbage.
        points = make_blobs(n=120)
        clean = build(points)

        chaos = ChaosPolicy(kill_at={0: 25}, corrupt_checkpoints=(0,), seed=17)
        model = build(
            points,
            n_jobs=2,
            checkpoint_path=tmp_path / "ck",
            checkpoint_every=5,
            chaos=chaos,
        )
        assert tree_signature(model.tree_) == tree_signature(clean.tree_)
        audit(model.tree_)
        assert_conserved(model)
        summary = next(s for s in model.shard_summaries_ if s["shard_id"] == 0)
        assert summary["checkpoint_discarded"]
        assert summary["resumed_at"] is None


class TestSupervisorEdges:
    def test_no_fallback_raises_worker_crash_error(self):
        # inline_fallback=False is the strict mode: exhausted retries
        # surface as a typed error instead of degrading. A permanently
        # flaky metric fails every attempt.
        task = ShardTask(
            shard_id=0,
            n_shards=1,
            objects=[np.zeros(2), np.ones(2), np.full(2, 2.0), np.full(2, 3.0)],
            driver=BUBBLE,
            params={},
            metric=FlakyMetric(EuclideanDistance(), failure_rate=1.0, seed=0),
            seed=0,
        )
        supervisor = ShardSupervisor(
            [task],
            n_jobs=1,
            max_retries=1,
            backoff=0.0,
            inline_fallback=False,
            sleep=lambda s: None,
        )
        with pytest.raises(WorkerCrashError, match="2 attempt"):
            supervisor.run()
        assert supervisor.stats.shards_retried == 1

    def test_unarmed_policy_never_kills_inline(self):
        # Safety property: running a kill schedule inline (parent PID ==
        # armed PID) must never take down the calling process.
        points = make_blobs(n=60)
        chaos = ChaosPolicy(kill_at={0: 1, 1: 1, 2: 1}, kill_attempts=99, seed=1)
        model = build(points, n_jobs=1, chaos=chaos)
        assert model.tree_ is not None
        assert model.ingest_report_.workers_crashed == 0


class TestChaosSweep:
    @given(
        flaky_shard=st.integers(min_value=0, max_value=2),
        chaos_seed=st.integers(min_value=0, max_value=1000),
        flaky_rate=st.sampled_from([0.02, 0.2, 1.0]),
    )
    @settings(max_examples=8, deadline=None)
    def test_inline_flaky_faults_never_change_the_tree(
        self, flaky_shard, chaos_seed, flaky_rate
    ):
        # Property: for every seeded recoverable fault schedule, the build
        # converges to the exact tree the clean run produces (the retry
        # replays the shard deterministically), and conservation holds.
        points = make_blobs(n=60)
        clean = build(points)

        chaos = ChaosPolicy(
            flaky_shards=(flaky_shard,), flaky_rate=flaky_rate, seed=chaos_seed
        )
        model = build(points, chaos=chaos)
        assert tree_signature(model.tree_) == tree_signature(clean.tree_)
        assert_conserved(model)
