"""Unit tests for partial_fit streaming, model summary, and persistence."""

import numpy as np
import pytest

from repro import BUBBLE
from repro.core.features import SubCluster
from repro.exceptions import NotFittedError, ParameterError
from repro.metrics import EditDistance, EuclideanDistance
from repro.persistence import load_subclusters, save_subclusters


class TestPartialFit:
    def test_batches_equal_single_scan(self, blob_data):
        points, _, _ = blob_data
        a = BUBBLE(EuclideanDistance(), max_nodes=10, seed=7).fit(points)
        b = BUBBLE(EuclideanDistance(), max_nodes=10, seed=7)
        b.partial_fit(points[:100])
        b.partial_fit(points[100:])
        b.finalize()
        sig_a = sorted((s.n, round(s.radius, 9)) for s in a.subclusters_)
        sig_b = sorted((s.n, round(s.radius, 9)) for s in b.subclusters_)
        assert sig_a == sig_b

    def test_counts_accumulate(self, euclidean, rng):
        model = BUBBLE(euclidean, seed=0)
        model.partial_fit(list(rng.normal(size=(50, 2))))
        model.partial_fit(list(rng.normal(size=(30, 2))))
        assert model.tree_.n_objects == 80

    def test_finalize_requires_tree(self, euclidean):
        with pytest.raises(NotFittedError):
            BUBBLE(euclidean).finalize()

    def test_refit_resets(self, euclidean, rng):
        model = BUBBLE(euclidean, seed=0)
        model.fit(list(rng.normal(size=(40, 2))))
        model.fit(list(rng.normal(size=(25, 2))))
        assert model.tree_.n_objects == 25


class TestSummary:
    def test_keys_and_values(self, euclidean, blob_data):
        points, _, _ = blob_data
        model = BUBBLE(euclidean, max_nodes=10, seed=0).fit(points)
        s = model.summary()
        assert s["algorithm"] == "BUBBLE"
        assert s["n_objects"] == len(points)
        assert s["n_subclusters"] == model.n_subclusters_
        assert s["n_distance_calls"] > 0
        assert s["n_nodes"] <= 10

    def test_requires_fit(self, euclidean):
        with pytest.raises(NotFittedError):
            BUBBLE(euclidean).summary()


class TestPersistence:
    def test_vector_round_trip(self, tmp_path, euclidean, blob_data):
        points, _, _ = blob_data
        model = BUBBLE(euclidean, max_nodes=10, seed=0).fit(points)
        path = tmp_path / "subclusters.json"
        save_subclusters(path, model.subclusters_, metadata={"metric": "euclidean"})
        loaded, meta = load_subclusters(path)
        assert meta == {"metric": "euclidean"}
        assert len(loaded) == len(model.subclusters_)
        for orig, back in zip(model.subclusters_, loaded):
            assert back.n == orig.n
            assert back.radius == pytest.approx(orig.radius)
            np.testing.assert_allclose(back.clustroid, np.asarray(orig.clustroid))
            assert len(back.representatives) == len(orig.representatives)

    def test_string_round_trip(self, tmp_path):
        model = BUBBLE(EditDistance(), threshold=1.0, seed=0).fit(
            ["data", "date", "data", "web", "wib"]
        )
        path = tmp_path / "strings.json"
        save_subclusters(path, model.subclusters_)
        loaded, _ = load_subclusters(path)
        assert {s.clustroid for s in loaded} == {
            s.clustroid for s in model.subclusters_
        }
        assert all(isinstance(s.clustroid, str) for s in loaded)

    def test_loaded_centers_usable_for_labeling(self, tmp_path, blob_data):
        from repro.pipelines import nearest_assignment

        points, _, _ = blob_data
        metric = EuclideanDistance()
        model = BUBBLE(metric, max_nodes=10, seed=0).fit(points)
        path = tmp_path / "subclusters.json"
        save_subclusters(path, model.subclusters_)
        loaded, _ = load_subclusters(path)
        labels = nearest_assignment(metric, points[:20], [s.clustroid for s in loaded])
        assert labels.shape == (20,)

    def test_unknown_object_type_rejected(self, tmp_path):
        bad = [SubCluster(clustroid={1, 2}, n=1, radius=0.0, representatives=[{1, 2}])]
        with pytest.raises(ParameterError):
            save_subclusters(tmp_path / "bad.json", bad)

    def test_custom_codec(self, tmp_path):
        subs = [SubCluster(clustroid=(1, 2), n=3, radius=0.5, representatives=[(1, 2)])]
        path = tmp_path / "tuples.json"
        save_subclusters(path, subs, encode=lambda t: list(t))
        loaded, _ = load_subclusters(path, decode=lambda v: tuple(v))
        assert loaded[0].clustroid == (1, 2)

    def test_version_check(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text('{"format_version": 99, "subclusters": []}')
        with pytest.raises(ParameterError):
            load_subclusters(path)


class TestPersistenceAcrossRebuilds:
    """Round-trips must survive the rebuild path: trees that grew through
    Type II re-insertions (and outlier parking) produce summaries whose
    serialized form is identical to the in-memory one."""

    def _assert_identical(self, saved, loaded):
        assert len(loaded) == len(saved)
        for orig, back in zip(saved, loaded):
            assert back.n == orig.n
            assert back.radius == pytest.approx(orig.radius, rel=0, abs=0)
            np.testing.assert_array_equal(
                np.asarray(back.clustroid), np.asarray(orig.clustroid)
            )
            assert len(back.representatives) == len(orig.representatives)
            for r_orig, r_back in zip(orig.representatives, back.representatives):
                np.testing.assert_array_equal(
                    np.asarray(r_back), np.asarray(r_orig)
                )

    def test_rebuilt_tree_round_trip(self, tmp_path, euclidean, rng):
        points = list(rng.normal(size=(600, 2)))
        model = BUBBLE(euclidean, max_nodes=8, seed=0).fit(points)
        assert model.tree_.n_rebuilds > 0  # the rebuild path actually ran
        path = tmp_path / "rebuilt.json"
        save_subclusters(path, model.subclusters_)
        loaded, _ = load_subclusters(path)
        self._assert_identical(model.subclusters_, loaded)

    def test_rebuilds_with_outlier_parking_round_trip(self, tmp_path, euclidean, rng):
        dense = list(rng.normal(size=(400, 2)))
        stragglers = list(rng.normal(size=(20, 2)) * 50 + 500)
        order = rng.permutation(420)
        points = [(dense + stragglers)[i] for i in order]
        model = BUBBLE(
            euclidean, max_nodes=8, outlier_fraction=0.5, seed=0
        ).fit(points)
        assert model.tree_.n_rebuilds > 0
        assert model.tree_.n_outliers_parked > 0
        assert model.tree_.n_objects == 420  # parked clusters were re-absorbed
        path = tmp_path / "outliers.json"
        save_subclusters(path, model.subclusters_)
        loaded, _ = load_subclusters(path)
        self._assert_identical(model.subclusters_, loaded)
        assert sum(s.n for s in loaded) == 420

    def test_string_tree_with_rebuilds_round_trip(self, tmp_path, rng):
        pool = ["smith", "smyth", "jones", "brown", "braun", "taylor"]
        words = [pool[i % 6] + str(int(x)) for i, x in enumerate(rng.uniform(0, 100, 300))]
        model = BUBBLE(EditDistance(), max_nodes=4, seed=1).fit(words)
        assert model.tree_.n_rebuilds > 0
        path = tmp_path / "strings_rebuilt.json"
        save_subclusters(path, model.subclusters_)
        loaded, _ = load_subclusters(path)
        assert sorted((s.n, s.clustroid) for s in loaded) == sorted(
            (s.n, s.clustroid) for s in model.subclusters_
        )
