"""Property-based tests for the BUBBLE CF* invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import BubbleClusterFeature
from repro.metrics import EuclideanDistance, FunctionDistance

points = st.lists(
    st.tuples(
        st.floats(min_value=-50, max_value=50, allow_nan=False),
        st.floats(min_value=-50, max_value=50, allow_nan=False),
    ),
    min_size=1,
    max_size=25,
)


def build_feature(objs, rep_number=8):
    metric = EuclideanDistance()
    f = BubbleClusterFeature(metric, np.asarray(objs[0], dtype=float), rep_number)
    for o in objs[1:]:
        f.absorb(np.asarray(o, dtype=float))
    return metric, f


class TestInvariants:
    @given(objs=points)
    @settings(max_examples=100, deadline=None)
    def test_n_equals_insertions(self, objs):
        _, f = build_feature(objs)
        assert f.n == len(objs)

    @given(objs=points)
    @settings(max_examples=100, deadline=None)
    def test_radius_nonnegative_finite(self, objs):
        _, f = build_feature(objs)
        assert np.isfinite(f.radius)
        assert f.radius >= 0.0

    @given(objs=points)
    @settings(max_examples=100, deadline=None)
    def test_rep_count_bounded(self, objs):
        _, f = build_feature(objs, rep_number=6)
        assert 1 <= len(f.representatives) <= max(6, 1)

    @given(objs=points)
    @settings(max_examples=100, deadline=None)
    def test_clustroid_is_member_while_exact(self, objs):
        _, f = build_feature(objs, rep_number=30)  # cap above max_size: stays exact
        assert f.exact
        member_set = {tuple(np.asarray(o, dtype=float)) for o in objs}
        assert tuple(np.asarray(f.clustroid)) in member_set

    @given(objs=points)
    @settings(max_examples=100, deadline=None)
    def test_exact_clustroid_minimizes_rowsum(self, objs):
        metric, f = build_feature(objs, rep_number=30)
        vecs = [np.asarray(o, dtype=float) for o in objs]
        rowsums = [
            sum(float(np.linalg.norm(a - b)) ** 2 for b in vecs) for a in vecs
        ]
        best = min(rowsums)
        got = sum(
            float(np.linalg.norm(np.asarray(f.clustroid) - b)) ** 2 for b in vecs
        )
        assert got <= best + 1e-6

    @given(objs_a=points, objs_b=points)
    @settings(max_examples=60, deadline=None)
    def test_merge_conserves_population(self, objs_a, objs_b):
        _, fa = build_feature(objs_a)
        _, fb = build_feature(objs_b)
        fa.merge(fb)
        assert fa.n == len(objs_a) + len(objs_b)
        assert np.isfinite(fa.radius)


class TestObservationOne:
    @given(objs=points)
    @settings(max_examples=60, deadline=None)
    def test_rowsum_estimate_upper_bounds_truth(self, objs):
        """Observation 1: n r^2 + n d^2(clustroid, o) >= true RowSum(o)
        when the clustroid image coincides with the image centroid; in
        general it approximates it. We check it is within a factor of the
        exact value plus slack for small clusters."""
        if len(objs) < 3:
            return
        metric = EuclideanDistance()
        vecs = [np.asarray(o, dtype=float) for o in objs]
        f = BubbleClusterFeature(metric, vecs[0], representation_number=30)
        for v in vecs[1:]:
            f.absorb(v)
        new = np.asarray([100.0, -100.0])
        true_rowsum = sum(float(np.linalg.norm(new - v)) ** 2 for v in vecs)
        d0 = float(np.linalg.norm(new - np.asarray(f.clustroid)))
        estimate = f.n * (f.radius**2 + d0**2)
        # The estimate replaces the centroid with the clustroid; it can only
        # overshoot by the clustroid-centroid gap, never undershoot by more
        # than that gap times distances. Allow 30% tolerance.
        assert estimate >= 0.5 * true_rowsum
        assert estimate <= 2.0 * true_rowsum
