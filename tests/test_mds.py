"""Unit tests for classical MDS and the stress diagnostic."""

import numpy as np
import pytest

from repro.exceptions import EmptyDatasetError, ParameterError
from repro.fastmap import classical_mds, stress
from repro.metrics import EuclideanDistance


class TestClassicalMDS:
    def test_reconstructs_euclidean_distances_exactly(self):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(12, 3))
        dm = EuclideanDistance().pairwise(list(pts))
        coords = classical_mds(dm, k=3)
        dm2 = EuclideanDistance().pairwise(list(coords))
        np.testing.assert_allclose(dm, dm2, atol=1e-8)

    def test_paper_example_three_objects(self):
        # The paper's example: distances 3, 4, 5 embed exactly in R^2.
        dm = np.array([[0, 3, 5], [3, 0, 4], [5, 4, 0]], dtype=float)
        coords = classical_mds(dm, k=2)
        out = EuclideanDistance().pairwise(list(coords))
        np.testing.assert_allclose(out, dm, atol=1e-9)

    def test_pads_with_zero_columns(self):
        dm = np.array([[0.0, 2.0], [2.0, 0.0]])
        coords = classical_mds(dm, k=3)
        assert coords.shape == (2, 3)
        # Only one dimension is needed; others must carry nothing.
        assert np.allclose(coords[:, 1:], 0.0, atol=1e-9)

    def test_rejects_non_square(self):
        with pytest.raises(ParameterError):
            classical_mds(np.zeros((2, 3)), k=1)

    def test_rejects_empty(self):
        with pytest.raises(EmptyDatasetError):
            classical_mds(np.zeros((0, 0)), k=1)

    def test_rejects_bad_k(self):
        with pytest.raises(ParameterError):
            classical_mds(np.zeros((2, 2)), k=0)

    def test_dimension_reduction_is_projection(self):
        # Embedding 3-d data into 2-d keeps stress moderate.
        rng = np.random.default_rng(1)
        pts = rng.normal(size=(15, 3))
        pts[:, 2] *= 0.05  # nearly planar
        dm = EuclideanDistance().pairwise(list(pts))
        coords = classical_mds(dm, k=2)
        s = stress(list(pts), coords, EuclideanDistance())
        assert s < 0.05


class TestStress:
    def test_zero_for_exact_embedding(self):
        pts = [np.array([0.0, 0.0]), np.array([1.0, 0.0]), np.array([0.0, 1.0])]
        assert stress(pts, np.asarray(pts), EuclideanDistance()) == pytest.approx(0.0)

    def test_single_object(self):
        assert stress([np.zeros(2)], np.zeros((1, 2)), EuclideanDistance()) == 0.0

    def test_positive_for_distorted_embedding(self):
        pts = [np.array([0.0, 0.0]), np.array([1.0, 0.0]), np.array([0.0, 1.0])]
        bad = np.zeros((3, 2))
        assert stress(pts, bad, EuclideanDistance()) > 0.9
