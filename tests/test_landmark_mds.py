"""Unit tests for Landmark MDS and the pluggable BUBBLE-FM mapper."""

import numpy as np
import pytest

from repro import BUBBLEFM
from repro.exceptions import EmptyDatasetError, NotFittedError, ParameterError
from repro.fastmap import LandmarkMDS, stress
from repro.metrics import EditDistance, EuclideanDistance


class TestLandmarkMDS:
    def test_validation(self):
        with pytest.raises(ParameterError):
            LandmarkMDS("metric", 2)
        with pytest.raises(ParameterError):
            LandmarkMDS(EuclideanDistance(), 0)
        with pytest.raises(ParameterError):
            LandmarkMDS(EuclideanDistance(), k=3, n_landmarks=2)

    def test_empty(self):
        with pytest.raises(EmptyDatasetError):
            LandmarkMDS(EuclideanDistance(), 2, seed=0).fit([])

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            LandmarkMDS(EuclideanDistance(), 2, seed=0).transform(np.zeros(2))

    def test_embedding_shape(self):
        rng = np.random.default_rng(0)
        pts = list(rng.normal(size=(30, 3)))
        lm = LandmarkMDS(EuclideanDistance(), k=3, seed=0)
        images = lm.fit(pts)
        assert images.shape == (30, 3)
        assert lm.embedding_ is images

    def test_preserves_euclidean_distances(self):
        rng = np.random.default_rng(1)
        pts = list(rng.normal(size=(40, 2)))
        metric = EuclideanDistance()
        lm = LandmarkMDS(metric, k=2, seed=1)
        images = lm.fit(pts)
        assert stress(pts, images, EuclideanDistance()) < 0.05

    def test_often_beats_fastmap_stress(self):
        from repro.fastmap import FastMap

        rng = np.random.default_rng(2)
        pts = list(rng.normal(size=(50, 5)))
        lm_images = LandmarkMDS(EuclideanDistance(), k=5, seed=2).fit(pts)
        fm_images = FastMap(EuclideanDistance(), k=5, iterations=1, seed=2).fit(pts)
        s_lm = stress(pts, lm_images, EuclideanDistance())
        s_fm = stress(pts, fm_images, EuclideanDistance())
        assert s_lm <= s_fm + 0.02

    def test_transform_consistent_with_fit(self):
        rng = np.random.default_rng(3)
        pts = list(rng.normal(size=(25, 2)))
        lm = LandmarkMDS(EuclideanDistance(), k=2, seed=3)
        images = lm.fit(pts)
        for i in (0, 10, 24):
            v = lm.transform(pts[i])
            assert np.linalg.norm(v - images[i]) < 1e-6

    def test_transform_cost(self):
        rng = np.random.default_rng(4)
        pts = list(rng.normal(size=(30, 2)))
        metric = EuclideanDistance()
        lm = LandmarkMDS(metric, k=2, seed=4)
        lm.fit(pts)
        before = metric.n_calls
        lm.transform(np.zeros(2))
        assert metric.n_calls - before == lm.n_pivot_calls_per_object

    def test_duplicate_objects(self):
        pts = [np.zeros(2)] * 10
        lm = LandmarkMDS(EuclideanDistance(), k=2, seed=5)
        images = lm.fit(pts)
        assert np.allclose(images, images[0])

    def test_works_on_strings(self):
        words = ["cat", "cart", "carts", "dog", "dogs", "digs", "cog", "bat"]
        lm = LandmarkMDS(EditDistance(), k=2, n_landmarks=4, seed=6)
        images = lm.fit(words)
        assert images.shape == (8, 2)
        assert np.all(np.isfinite(images))

    def test_transform_many(self):
        rng = np.random.default_rng(7)
        pts = list(rng.normal(size=(20, 2)))
        lm = LandmarkMDS(EuclideanDistance(), k=2, seed=7)
        lm.fit(pts)
        assert lm.transform_many(pts[:5]).shape == (5, 2)
        assert lm.transform_many([]).shape == (0, 2)


class TestBubbleFMWithLandmark:
    def test_rejects_unknown_mapper(self):
        from repro.core.bubble_fm import BubbleFMPolicy

        with pytest.raises(ParameterError):
            BubbleFMPolicy(EuclideanDistance(), mapper="isomap")

    def test_landmark_mapper_clusters_blobs(self, blob_data):
        points, labels, centers = blob_data
        model = BUBBLEFM(
            EuclideanDistance(), max_nodes=10, image_dim=2,
            mapper="landmark", seed=0,
        ).fit(points)
        clustroids = np.asarray(model.clustroids_)
        for c in centers:
            assert np.min(np.linalg.norm(clustroids - c, axis=1)) < 1.5

    def test_landmark_on_strings(self):
        strings = ["cat", "cart", "carts", "dog", "dogs", "dig"] * 5
        model = BUBBLEFM(
            EditDistance(), image_dim=2, threshold=1.0, mapper="landmark", seed=0
        ).fit(strings)
        assert model.n_subclusters_ >= 2
