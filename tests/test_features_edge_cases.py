"""Edge-case coverage for CF* maintenance paths that randomized tests reach
only probabilistically."""

import numpy as np
import pytest

from repro.core.features import BubbleClusterFeature
from repro.metrics import EditDistance, EuclideanDistance


class TestExactToHeuristicTransition:
    def test_transition_point(self, euclidean):
        f = BubbleClusterFeature(euclidean, np.zeros(1), representation_number=4)
        for v in (1.0, 2.0, 3.0):
            f.absorb(np.array([v]))
        assert f.exact
        assert len(f.representatives) == 4
        f.absorb(np.array([4.0]))  # 5th object: heuristic kicks in
        assert not f.exact
        assert len(f.representatives) == 4
        assert f.n == 5

    def test_rowsums_stay_consistent_across_transition(self, euclidean):
        f = BubbleClusterFeature(euclidean, np.zeros(1), representation_number=4)
        for v in (1.0, 2.0, 3.0, 1.5, 2.5):
            f.absorb(np.array([v]))
        # All rowsums non-negative and clustroid has the minimum.
        rs = f.rowsums
        assert min(rs) >= 0
        c_idx = rs.index(min(rs))
        np.testing.assert_allclose(f.representatives[c_idx], f.clustroid)


class TestMergeVariants:
    def test_exact_plus_heuristic_merge(self, euclidean):
        small = BubbleClusterFeature(euclidean, np.zeros(2), representation_number=4)
        small.absorb(np.array([0.1, 0.0]))
        big = BubbleClusterFeature(euclidean, np.ones(2), representation_number=4)
        rng = np.random.default_rng(0)
        for _ in range(20):
            big.absorb(np.ones(2) + 0.1 * rng.normal(size=2))
        assert small.exact and not big.exact
        big.merge(small)
        assert big.n == 23
        assert not big.exact
        assert len(big.representatives) <= 4

    def test_merge_two_singletons_stays_exact(self, euclidean):
        a = BubbleClusterFeature(euclidean, np.zeros(1), representation_number=4)
        b = BubbleClusterFeature(euclidean, np.array([1.0]), representation_number=4)
        a.merge(b)
        assert a.exact
        assert a.n == 2
        assert a.radius == pytest.approx(np.sqrt(0.5))

    def test_merge_identical_clusters(self, euclidean):
        a = BubbleClusterFeature(euclidean, np.zeros(2), representation_number=4)
        b = BubbleClusterFeature(euclidean, np.zeros(2), representation_number=4)
        a.merge(b)
        assert a.n == 2
        assert a.radius == 0.0

    def test_chain_of_merges_population(self, euclidean):
        rng = np.random.default_rng(1)
        features = []
        for i in range(6):
            f = BubbleClusterFeature(euclidean, rng.normal(size=2), representation_number=4)
            for _ in range(int(rng.integers(0, 8))):
                f.absorb(rng.normal(size=2))
            features.append(f)
        expected = sum(f.n for f in features)
        root = features[0]
        for f in features[1:]:
            root.merge(f)
        assert root.n == expected

    def test_string_merge(self):
        metric = EditDistance()
        a = BubbleClusterFeature(metric, "cluster", representation_number=4)
        a.absorb("clusters")
        b = BubbleClusterFeature(metric, "clustre", representation_number=4)
        b.absorb("cluter")
        a.merge(b)
        assert a.n == 4
        assert isinstance(a.clustroid, str)


class TestRadiusBehaviour:
    def test_radius_grows_with_spread(self, euclidean):
        tight = BubbleClusterFeature(euclidean, np.zeros(1), representation_number=6)
        loose = BubbleClusterFeature(euclidean, np.zeros(1), representation_number=6)
        rng = np.random.default_rng(2)
        for _ in range(40):
            tight.absorb(np.array([0.01 * rng.normal()]))
            loose.absorb(np.array([1.0 * rng.normal()]))
        assert loose.radius > tight.radius * 5

    def test_radius_approximates_rms_in_heuristic_mode(self, euclidean):
        rng = np.random.default_rng(3)
        pts = [rng.normal(size=2) for _ in range(300)]
        f = BubbleClusterFeature(euclidean, pts[0], representation_number=10)
        for p in pts[1:]:
            f.absorb(p)
        true_center = np.mean(pts, axis=0)
        true_rms = np.sqrt(np.mean([np.linalg.norm(p - true_center) ** 2 for p in pts]))
        assert f.radius == pytest.approx(true_rms, rel=0.3)
