"""Every example script must run to completion (deliverable b is runnable).

These run the examples in-process with a trimmed workload where possible to
keep the suite fast; the scripts themselves default to demo-sized data.
"""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))
FAST = {
    "quickstart.py",
    "custom_metric_space.py",
    "streaming_and_persistence.py",
    "trajectory_clustering.py",
}


@pytest.mark.parametrize(
    "script", [e for e in EXAMPLES if e.name in FAST], ids=lambda p: p.name
)
def test_fast_examples_run(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_examples_directory_complete():
    names = {e.name for e in EXAMPLES}
    assert {
        "quickstart.py",
        "strings_data_cleaning.py",
        "vector_workloads.py",
        "custom_metric_space.py",
        "paper_figures.py",
        "streaming_and_persistence.py",
        "trajectory_clustering.py",
    } <= names


@pytest.mark.parametrize(
    "script", [e for e in EXAMPLES if e.name not in FAST], ids=lambda p: p.name
)
def test_slow_examples_compile(script):
    """Slow examples are at least syntactically valid and importable."""
    source = script.read_text()
    compile(source, str(script), "exec")
