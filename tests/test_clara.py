"""Property and drill tests for the CLARA sampled global phase.

The sampled search is only trustworthy if it is (a) a pure function of
``(objects, weights, seed, n_samples)`` — in particular independent of
``n_jobs`` and of worker crashes — and (b) quality-gated against the exact
sequential CLARANS. Both properties are pinned here; the benchmark gate
(``benchmarks/test_clara_gate.py``) re-checks them at paper scale.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clarans import CLARA, CLARANS
from repro.core.preclusterer import BUBBLE
from repro.datasets import make_cell_dataset
from repro.evaluation import distortion
from repro.exceptions import EmptyDatasetError, NotFittedError, ParameterError
from repro.metrics import EuclideanDistance
from repro.observability import Tracer
from repro.pipelines import cluster_dataset
from repro.robustness.injection import ChaosPolicy


def _fit_clara(objects, *, n_jobs, seed=7, n_samples=3, chaos=None, tracer=None):
    metric = EuclideanDistance()
    model = CLARA(
        3,
        metric,
        n_samples=n_samples,
        sample_size=25,
        num_local=1,
        max_neighbors=20,
        n_jobs=n_jobs,
        seed=seed,
        chaos=chaos,
        **({"tracer": tracer} if tracer is not None else {}),
    )
    model.fit(objects)
    return model, metric


class TestDeterminism:
    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_bit_identical_across_n_jobs(self, blob_data, n_jobs):
        points, _, _ = blob_data
        reference, _ = _fit_clara(points, n_jobs=1)
        model, _ = _fit_clara(points, n_jobs=n_jobs)
        assert model.medoid_indices_ == reference.medoid_indices_
        assert model.cost_ == reference.cost_
        assert np.array_equal(model.labels_, reference.labels_)
        assert model.best_sample_ == reference.best_sample_
        assert model.sample_costs_ == reference.sample_costs_

    @settings(deadline=None, max_examples=8)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           n_samples=st.integers(min_value=1, max_value=4))
    def test_repeated_runs_bit_identical(self, seed, n_samples):
        rng = np.random.default_rng(0)
        points = list(rng.normal(size=(40, 2)))
        first, m1 = _fit_clara(points, n_jobs=1, seed=seed, n_samples=n_samples)
        second, m2 = _fit_clara(points, n_jobs=1, seed=seed, n_samples=n_samples)
        assert first.medoid_indices_ == second.medoid_indices_
        assert first.cost_ == second.cost_
        assert np.array_equal(first.labels_, second.labels_)
        assert m1.n_calls == m2.n_calls

    def test_weighted_cost_matches_manual(self, blob_data):
        points, _, _ = blob_data
        weights = np.linspace(1.0, 3.0, len(points))
        metric = EuclideanDistance()
        model = CLARA(
            3, metric, n_samples=2, sample_size=25, num_local=1,
            max_neighbors=20, seed=5,
        ).fit(points, weights=weights)
        medoids = np.asarray(model.medoids_)
        dists = np.min(
            np.linalg.norm(
                np.asarray(points)[:, None, :] - medoids[None, :, :], axis=2
            ),
            axis=1,
        )
        assert model.cost_ == pytest.approx(float(np.dot(dists, weights)), rel=1e-9)


class TestAccounting:
    def test_ledger_conservation_and_spans(self, blob_data):
        points, _, _ = blob_data
        tracer = Tracer()
        model, metric = _fit_clara(points, n_jobs=1, tracer=tracer)
        by_site = dict(tracer.calls_by_site)
        assert sum(by_site.values()) == tracer.total_calls == metric.n_calls
        assert by_site["global-sample"] > 0
        assert by_site["global-assign"] == 3 * 3 * len(points)
        assert by_site["global-sample"] == sum(
            s["n_calls"] for s in model.sample_summaries_
        )

    def test_chaos_worker_kill_drill(self, blob_data):
        points, _, _ = blob_data
        reference, ref_metric = _fit_clara(points, n_jobs=2)
        tracer = Tracer()
        chaos = ChaosPolicy(kill_at={1: 10}, seed=0)
        model, metric = _fit_clara(points, n_jobs=2, chaos=chaos, tracer=tracer)
        # The killed attempt's calls died with the worker; the retried
        # attempt replays the identical search, so the result and the
        # booked accounting both match the undisturbed run.
        assert model.medoid_indices_ == reference.medoid_indices_
        assert model.cost_ == reference.cost_
        assert np.array_equal(model.labels_, reference.labels_)
        assert metric.n_calls == ref_metric.n_calls
        assert sum(tracer.calls_by_site.values()) == tracer.total_calls == metric.n_calls

    def test_sample_summaries_shape(self, blob_data):
        points, _, _ = blob_data
        model, _ = _fit_clara(points, n_jobs=1)
        assert len(model.sample_summaries_) == 3
        for summary in model.sample_summaries_:
            assert summary["sample_size"] == 25
            assert summary["n_calls"] > 0
            assert summary["n_attempts"] == 1
        assert model.best_sample_ == int(np.argmin(model.sample_costs_))


class TestQuality:
    def test_distortion_within_tolerance_of_exact_on_fig4_cell(self):
        ds = make_cell_dataset(dim=20, n_clusters=5, n_points=500, seed=50)
        points = ds.as_objects()
        results = {}
        for phase in ("clarans", "clara"):
            result = cluster_dataset(
                points,
                EuclideanDistance(),
                n_clusters=5,
                max_nodes=60,
                global_phase=phase,
                global_samples=4,
                seed=50,
            )
            results[phase] = distortion(points, result.labels, result.centers)
        assert results["clara"] <= 1.05 * results["clarans"]


class TestDriverIntegration:
    def test_global_phase_method_populates_report(self, blob_data):
        points, _, _ = blob_data
        model = BUBBLE(EuclideanDistance(), max_nodes=20, seed=3).fit(points)
        search = model.global_phase(
            3, method="clara", global_samples=2, global_sample_size=25,
            max_neighbors=20,
        )
        assert search.n_clusters_ == 3
        assert len(model.global_phase_samples_) == 2
        report = model.ingest_report_
        assert report.global_samples == 2
        assert report.global_sample_ncd == sum(
            s["n_calls"] for s in model.global_phase_samples_
        )
        assert report.global_sample_seconds > 0
        assert "global samples:" in report.format()

    def test_global_phase_exact_records_no_samples(self, blob_data):
        points, _, _ = blob_data
        model = BUBBLE(EuclideanDistance(), max_nodes=20, seed=3).fit(points)
        search = model.global_phase(3, method="clarans", max_neighbors=20)
        assert search.n_clusters_ == 3
        assert model.global_phase_samples_ == []
        assert model.ingest_report_.global_samples == 0

    def test_global_phase_rejects_unknown_method(self, blob_data):
        points, _, _ = blob_data
        model = BUBBLE(EuclideanDistance(), max_nodes=20, seed=3).fit(points)
        with pytest.raises(ParameterError):
            model.global_phase(3, method="pam")

    def test_stats_snapshot_carries_samples(self, blob_data):
        from repro.observability import StatsSnapshot

        points, _, _ = blob_data
        model = BUBBLE(EuclideanDistance(), max_nodes=20, seed=3).fit(points)
        model.global_phase(3, method="clara", global_samples=2,
                           global_sample_size=25, max_neighbors=20)
        snapshot = StatsSnapshot.from_model(model)
        assert snapshot.global_samples == 2
        assert len(snapshot.global_phase_samples) == 2
        assert "global samples" in snapshot.format()
        assert snapshot.to_dict()["global_samples"] == 2


class TestValidation:
    def test_parameter_validation(self):
        metric = EuclideanDistance()
        with pytest.raises(ParameterError):
            CLARA(0, metric)
        with pytest.raises(ParameterError):
            CLARA(2, metric, n_samples=0)
        with pytest.raises(ParameterError):
            CLARA(2, metric, sample_size=0)
        with pytest.raises(ParameterError):
            CLARA(2, metric, seed=np.random.default_rng(0))

    def test_fit_validation(self, blob_data):
        points, _, _ = blob_data
        metric = EuclideanDistance()
        with pytest.raises(EmptyDatasetError):
            CLARA(2, metric).fit([])
        with pytest.raises(ParameterError):
            CLARA(5, metric).fit(list(points[:3]))
        with pytest.raises(ParameterError):
            CLARA(2, metric).fit(list(points[:10]), weights=[1.0] * 9)
        with pytest.raises(ParameterError):
            CLARA(2, metric).fit(list(points[:10]), weights=[0.0] * 10)

    def test_not_fitted(self):
        model = CLARA(2, EuclideanDistance())
        with pytest.raises(NotFittedError):
            _ = model.n_clusters_

    def test_tiny_dataset_uses_every_object(self):
        points = [np.array([float(i), 0.0]) for i in range(5)]
        model = CLARA(2, EuclideanDistance(), n_samples=2, sample_size=100,
                      max_neighbors=10, seed=1).fit(points)
        assert model.n_clusters_ == 2
        assert all(s["sample_size"] == 5 for s in model.sample_summaries_)

    def test_exact_reference_close_on_blobs(self, blob_data):
        points, _, _ = blob_data
        clara, _ = _fit_clara(points, n_jobs=1, n_samples=4)
        exact = CLARANS(3, EuclideanDistance(), num_local=1,
                        max_neighbors=20, seed=7).fit(points)
        # Same criterion (unweighted full cost): sampling may win or lose a
        # little, but stays within the gate tolerance.
        assert clara.cost_ <= 1.05 * exact.cost_
