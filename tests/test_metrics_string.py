"""Unit tests for string metrics: edit distance and variants."""

import pytest

from repro.exceptions import MetricError, ParameterError
from repro.metrics import (
    DamerauLevenshteinDistance,
    EditDistance,
    RelativeEditDistance,
    WeightedEditDistance,
    edit_distance,
)
from repro.metrics.string import damerau_levenshtein


class TestEditDistanceFunction:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("", "abc", 3),
            ("abc", "", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("intention", "execution", 5),
            ("a", "b", 1),
            ("ab", "ba", 2),  # plain Levenshtein: transposition costs 2
        ],
    )
    def test_known_values(self, a, b, expected):
        assert edit_distance(a, b) == expected

    def test_symmetry(self):
        assert edit_distance("sunday", "saturday") == edit_distance("saturday", "sunday")

    def test_upper_bound_short_circuits(self):
        # True distance is 5 but we cap at 2.
        assert edit_distance("intention", "execution", upper_bound=2) == 2

    def test_upper_bound_no_effect_when_within(self):
        assert edit_distance("kitten", "sitting", upper_bound=10) == 3

    def test_upper_bound_on_length_difference(self):
        assert edit_distance("", "abcdef", upper_bound=2) == 2

    def test_weighted_costs(self):
        # Deleting 3 chars at cost 0.5 each.
        assert edit_distance("abcdef", "abc", delete_cost=0.5) == pytest.approx(1.5)

    def test_substitution_cost(self):
        assert edit_distance("abc", "axc", substitute_cost=0.4) == pytest.approx(0.4)


class TestEditDistanceMetric:
    def test_counts_calls(self):
        m = EditDistance()
        m.distance("abc", "abd")
        assert m.n_calls == 1

    def test_rejects_non_string(self):
        m = EditDistance()
        with pytest.raises(MetricError):
            m.distance("abc", 42)

    def test_upper_bound_param_validation(self):
        with pytest.raises(ParameterError):
            EditDistance(upper_bound=0)

    def test_one_to_many(self):
        m = EditDistance()
        out = m.one_to_many("cat", ["cat", "cut", "dog"])
        assert list(out) == [0, 1, 3]


class TestWeightedEditDistance:
    def test_symmetric(self):
        m = WeightedEditDistance(indel_cost=0.5, substitute_cost=0.8)
        assert m.distance("abc", "xbcd") == m.distance("xbcd", "abc")

    def test_rejects_metric_violating_costs(self):
        with pytest.raises(ParameterError):
            WeightedEditDistance(indel_cost=0.3, substitute_cost=1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            WeightedEditDistance(indel_cost=0)


class TestDamerauLevenshtein:
    def test_transposition_costs_one(self):
        assert damerau_levenshtein("ab", "ba") == 1

    def test_matches_levenshtein_without_transpositions(self):
        assert damerau_levenshtein("kitten", "sitting") == 3

    def test_known_osa(self):
        assert damerau_levenshtein("ca", "abc") == 3  # OSA restriction

    def test_metric_class(self):
        m = DamerauLevenshteinDistance()
        assert m.distance("word", "wrod") == 1


class TestRelativeEditDistance:
    def test_normalizes_by_longer(self):
        m = RelativeEditDistance()
        assert m.distance("abcd", "abce") == pytest.approx(0.25)

    def test_identical(self):
        assert RelativeEditDistance().distance("same", "same") == 0.0

    def test_empty_both(self):
        assert RelativeEditDistance().distance("", "") == 0.0

    def test_completely_different(self):
        assert RelativeEditDistance().distance("aaaa", "bbbb") == pytest.approx(1.0)

    def test_in_unit_interval(self):
        m = RelativeEditDistance()
        for a, b in [("a", "bcdef"), ("xy", "yx"), ("", "abc")]:
            assert 0.0 <= m.distance(a, b) <= 1.0


class TestLevenshteinBlock:
    """The vectorized block DP must be bit-identical to the scalar loop."""

    def test_matches_scalar_on_random_strings(self):
        import random

        from repro.metrics.string import levenshtein_block

        rng = random.Random(7)
        words = [
            "".join(rng.choice("abcde") for _ in range(rng.randrange(0, 10)))
            for _ in range(120)
        ]
        for query in ["", "a", "edcba", "abcde", words[0], words[50]]:
            got = levenshtein_block(query, words)
            assert got.dtype == float
            assert list(got) == [edit_distance(query, w) for w in words]

    def test_edge_shapes(self):
        from repro.metrics.string import levenshtein_block

        assert len(levenshtein_block("abc", [])) == 0
        assert list(levenshtein_block("", ["", "ab", "xyz"])) == [0.0, 2.0, 3.0]
        assert list(levenshtein_block("abc", ["", ""])) == [3.0, 3.0]

    def test_unicode_and_padding_mix(self):
        from repro.metrics.string import levenshtein_block

        targets = ["", "á", "ábç∂", "😀x", "a" * 40, "ábç∂éf"]
        for query in ["ábç", "😀", "aaaa"]:
            got = levenshtein_block(query, targets)
            assert list(got) == [edit_distance(query, t) for t in targets]

    def test_one_to_many_uses_block_path_with_exact_counting(self):
        metric = EditDistance()
        words = ["cat", "cot", "dogs", "", "tack"]
        row = metric.one_to_many("cat", words)
        assert list(row) == [edit_distance("cat", w) for w in words]
        assert metric.n_calls == len(words)
        # cross/pairwise route through one_to_many: same values, same counts.
        cross = metric.cross(words[:2], words)
        assert metric.n_calls == len(words) + 2 * len(words)
        assert cross[0].tolist() == row.tolist()
        pair = metric.pairwise(words)
        assert metric.n_calls == len(words) + 2 * len(words) + 5 * 4 // 2
        assert pair[1][0] == edit_distance("cot", "cat")

    def test_upper_bound_falls_back_to_scalar_loop(self):
        bounded = EditDistance(upper_bound=2.0)
        words = ["kitten", "intention", "cat"]
        row = bounded.one_to_many("execution", words)
        assert list(row) == [
            edit_distance("execution", w, upper_bound=2.0) for w in words
        ]
