"""Figure 4 — wall-clock time vs number of points (DS20d.50c.*).

Paper shapes: (i) both algorithms scale linearly in N; (ii) BUBBLE is
consistently faster than BUBBLE-FM. (The paper's gap is an additive
constant; ours grows with N because the pure-Python FastMap transform costs
more per routed object than a vectorized numpy distance column — an
implementation-substrate artifact, see EXPERIMENTS.md.)
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_fig4_time_vs_points


def test_fig4_time_vs_points(benchmark, report, scale):
    result = benchmark.pedantic(
        run_fig4_time_vs_points, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    report.record(result)

    ns = np.asarray(result.column("#points"), dtype=float)
    tb = np.asarray(result.column("BUBBLE (s)"))
    tfm = np.asarray(result.column("BUBBLE-FM (s)"))

    # Linearity: per-point time at the largest N within 3x of the smallest
    # (sub-quadratic growth; tolerates warmup noise).
    assert tb[-1] / ns[-1] < 3 * max(tb[0] / ns[0], 1e-9)
    assert tfm[-1] / ns[-1] < 3 * max(tfm[0] / ns[0], 1e-9)
    # BUBBLE is the faster scan at scale (paper: consistently).
    assert tb[-1] <= tfm[-1] * 1.15
