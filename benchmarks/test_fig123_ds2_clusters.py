"""Figures 1-3 — the cluster centers found on DS2 by BUBBLE, BUBBLE-FM and
BIRCH (via Map-First) relative to the sine wave of true centers.

The quantitative summary is clustroid quality plus wave coverage; the raw
center coordinates land in ``benchmarks/results.json`` for replotting
(``examples/paper_figures.py`` renders them as ASCII scatter plots).
"""

from __future__ import annotations

from repro.experiments import run_fig123_ds2_centers


def test_ds2_centers_trace_wave(benchmark, report, scale):
    result = benchmark.pedantic(
        run_fig123_ds2_centers, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    report.record(result)

    by = result.row_map()
    for figure in ("Figure 1 (BUBBLE)", "Figure 2 (BUBBLE-FM)"):
        _, n_centers, cq, coverage = by[figure]
        assert n_centers == 100
        # Figures 1-2: BUBBLE/BUBBLE-FM clustroids sit on the wave.
        assert coverage >= 0.9
        assert cq < 1.0
    # Figure 3 carries no wave assertion: the paper's own Table 1 shows the
    # Map-First clustering of DS2 degrading ~9x in distortion; our run
    # exhibits the same failure mode (centers pulled off the wave by the
    # image-space distortion) — the recorded row shows how far.
    assert by["Figure 3 (BIRCH/Map-First)"][1] == 100
