"""Table 3 — the data-cleaning application: BUBBLE-FM vs RED on an
authority-file workload (paper Section 7; RDS simulated per DESIGN.md).

Paper (Table 3), 150k strings / 13,884 variants:

    Algorithm            #clusters   #misplaced   time (hrs)
    RED (run 1)          10161       69           45
    BUBBLE-FM (run 1)    10078       897          7.5
    BUBBLE-FM (run 2)    12385       20           7

Shapes under test, mirroring the paper's two operating points:

* run 1 (speed: loose threshold, CF*-tree second phase) — far fewer distance
  computations than RED at a misplacement penalty (the paper's 897 vs 69);
* run 2 (quality: tight threshold, exact second phase) — more clusters than
  RED with *fewer* misplaced strings (the paper's 12,385 / 20).
"""

from __future__ import annotations

from repro.experiments import run_table3


def test_table3_data_cleaning(benchmark, report, scale):
    result = benchmark.pedantic(run_table3, kwargs={"scale": scale}, rounds=1, iterations=1)
    report.record(result)

    by = result.row_map()
    red = by["RED (run 1)"]
    fm1 = by["BUBBLE-FM (run 1)"]
    fm2 = by["BUBBLE-FM (run 2)"]
    clusters, misplaced, ncd = 1, 2, 4

    # Run 1 shape: much cheaper than RED, at a misplacement penalty.
    assert fm1[ncd] < red[ncd]
    assert fm1[misplaced] >= red[misplaced]
    # Run 2 shape: more clusters than RED, fewer misplaced strings.
    assert fm2[clusters] > red[clusters]
    assert fm2[misplaced] < red[misplaced]
