"""Table 2 — clustering quality of BUBBLE and BUBBLE-FM on DS20d.50c.

Paper (Table 2):

    Algorithm   CQ      Actual distortion   Computed distortion
    BUBBLE      0.289   21127.4             21127.5
    BUBBLE-FM   0.294   21127.4             21127.5

with the CQ floor (mean distance from each actual centroid to the closest
actual point) at 0.212.

Shapes under test: CQ lands close to the floor for both algorithms, and the
computed distortion matches the actual distortion almost exactly.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_table2


def test_table2_quality(benchmark, report, scale):
    result = benchmark.pedantic(run_table2, kwargs={"scale": scale}, rounds=1, iterations=1)
    report.record(result)

    for row in result.rows:
        _, cq, floor, actual, computed, *_ = row
        # CQ within a small multiple of the floor (paper: 0.289 vs 0.212).
        assert cq < 4 * floor
        # Computed distortion tracks the actual clustering's distortion.
        assert computed == pytest.approx(actual, rel=0.05)
