"""Regression gate for the parallel sharded build.

Re-runs the sequential-vs-sharded comparison (same Figure 4 workload,
seeds, and shard count as the committed ``BENCH_parallel.json``) with
``n_jobs=2`` and asserts the parallel build's contract:

* **determinism** — two parallel runs produce byte-identical merged trees
  (the fingerprint covers structure and every leaf clustroid);
* **audit cleanliness** — the merged tree passes the full invariant
  sanitizer with zero errors;
* **conservation** — the per-site ledger still partitions the parallel
  run's total NCD exactly, shard re-booking included;
* **quality** — the sharded build's Table 2-style metrics (clustroid
  quality, distortion) stay within tolerance of the sequential build's;
* **baseline** — parallel NCD stays within tolerance of the committed
  ``BENCH_parallel.json``, so accounting drift fails CI instead of
  landing;
* **speedup** — the scan reaches >= 1.5x on four workers, gated only
  where the machine actually has >= 4 usable CPUs (a single-core CI box
  runs every other check and records its honest numbers).

``n_shards`` is pinned by the harness (``PARALLEL_SHARDS``) so the merged
tree — and hence the NCD — is the same no matter how many workers run it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks.harness import (
    PARALLEL_OUTPUT,
    run_parallel_benchmark,
    usable_cpus,
)

#: Relative tolerance vs the committed baseline's NCD totals.
TOLERANCE = 0.02

#: Allowed relative drift of the sharded build's quality metrics vs the
#: sequential build on the same workload (the shards grow their thresholds
#: on partial views; Section 4.2.2 bounds the effect, it does not zero it).
QUALITY_TOLERANCE = 0.25

#: The acceptance bar for the scan speedup on four workers.
MIN_SPEEDUP = 1.5


@pytest.fixture(scope="module")
def parallel_doc(tmp_path_factory):
    out = tmp_path_factory.mktemp("parallel") / "BENCH_parallel.json"
    return run_parallel_benchmark(
        scale="smoke", output=out, n_jobs=2, verbose=False
    )


@pytest.fixture(scope="module")
def baseline_doc():
    if not PARALLEL_OUTPUT.exists():
        pytest.skip("no committed BENCH_parallel.json baseline")
    return json.loads(Path(PARALLEL_OUTPUT).read_text(encoding="utf-8"))


def test_parallel_build_is_deterministic(parallel_doc):
    assert parallel_doc["deterministic"], (
        "two parallel runs produced different merged trees: "
        f"{parallel_doc['parallel']['tree_fingerprint']} vs "
        f"{parallel_doc['parallel_repeat']['tree_fingerprint']}"
    )


def test_merged_tree_is_audit_clean(parallel_doc):
    audit = parallel_doc["parallel"]["audit"]
    assert audit["n_errors"] == 0, f"merged tree has {audit['n_errors']} audit errors"


def test_conservation_law_holds_across_shards(parallel_doc):
    for side in ("sequential", "parallel"):
        record = parallel_doc[side]
        assert sum(record["ncd_by_site"].values()) == record["ncd_total"], side


def test_parallel_ncd_matches_repeat(parallel_doc):
    # NCD is part of the determinism contract, not just the tree shape.
    assert (
        parallel_doc["parallel"]["ncd_total"]
        == parallel_doc["parallel_repeat"]["ncd_total"]
    )


def test_shards_partition_the_input(parallel_doc):
    record = parallel_doc["parallel"]
    total = sum(shard["n_objects"] for shard in record["shards"])
    assert total == parallel_doc["workload"]["n_points"]


def test_quality_within_tolerance_of_sequential(parallel_doc):
    seq = parallel_doc["sequential"]["quality"]
    par = parallel_doc["parallel"]["quality"]
    for key in ("clustroid_quality", "distortion"):
        assert par[key] == pytest.approx(seq[key], rel=QUALITY_TOLERANCE), (
            f"sharded build's {key} drifted: {par[key]} vs sequential {seq[key]}"
        )


def test_within_tolerance_of_committed_baseline(parallel_doc, baseline_doc):
    assert baseline_doc["format"] == parallel_doc["format"]
    assert baseline_doc["workload"] == parallel_doc["workload"]
    got = parallel_doc["parallel"]["ncd_total"]
    want = baseline_doc["parallel"]["ncd_total"]
    assert got == pytest.approx(want, rel=TOLERANCE), (
        f"parallel NCD drifted: {got} vs committed baseline {want}"
    )
    assert (
        parallel_doc["sequential"]["ncd_total"]
        == pytest.approx(baseline_doc["sequential"]["ncd_total"], rel=TOLERANCE)
    )


def test_baseline_records_cpu_environment(baseline_doc):
    """The committed baseline must carry its recording environment, and it
    must not be stale relative to this machine.

    ``BENCH_parallel.json`` records ``cpu_count``/``usable_cpus`` at
    recording time. If this machine can actually exercise the 4-worker
    speedup path (>= 4 usable CPUs) but the committed numbers came from a
    smaller box, the baseline's wall-clock and speedup figures are stale —
    fail loudly with the re-record command instead of silently gating
    against numbers no current machine produced. On smaller boxes the test
    records the honest skip annotation (which CPUs we have, which the
    baseline had) so the skip reason is auditable in CI logs.
    """
    recorded = baseline_doc.get("usable_cpus")
    assert recorded is not None, "baseline predates cpu_count recording; re-record it"
    here = usable_cpus()
    if here >= 4 > recorded:
        pytest.fail(
            f"committed BENCH_parallel.json was recorded with {recorded} usable "
            f"CPU(s) but this machine has {here}: the speedup/wall-clock figures "
            "are stale — re-record with "
            "`python -m benchmarks.harness --parallel --scale smoke`"
        )
    if here < 4:
        pytest.skip(
            f"baseline re-record not possible here: machine has {here} usable "
            f"CPU(s) (< 4); committed baseline recorded cpu_count="
            f"{baseline_doc.get('cpu_count')}, usable_cpus={recorded}"
        )


@pytest.mark.skipif(
    usable_cpus() < 4,
    reason=(
        f"speedup gate needs >= 4 usable CPUs; this machine has "
        f"{usable_cpus()}"
    ),
)
def test_speedup_on_four_workers(tmp_path):
    doc = run_parallel_benchmark(
        scale="smoke",
        output=tmp_path / "BENCH_parallel_4.json",
        n_jobs=4,
        verbose=False,
    )
    assert doc["speedup_scan"] >= MIN_SPEEDUP, (
        f"scan speedup {doc['speedup_scan']}x on {doc['usable_cpus']} CPUs "
        f"is below the {MIN_SPEEDUP}x bar"
    )
