"""Table 1 — distortion: Map-First option vs BUBBLE vs BUBBLE-FM.

Paper (Table 1), 100k-point datasets:

    Dataset            Map-First   BUBBLE    BUBBLE-FM
    DS1                195146      129798    122544
    DS2                1147830     125093    125094
    DS20d.50c.100K     2.214e6     21127.5   21127.5

Shapes under test: BUBBLE and BUBBLE-FM reach (near-)identical distortion
and never lose to Map-First. See EXPERIMENTS.md for where our (stronger)
FastMap narrows the paper's gap on exactly-Euclidean data, and Table 1b for
the structural Map-First failure on string data.
"""

from __future__ import annotations

from repro.experiments import run_table1


def test_table1_distortion(benchmark, report, scale):
    result = benchmark.pedantic(run_table1, kwargs={"scale": scale}, rounds=1, iterations=1)
    report.record(result)

    for row in result.row_map().values():
        _, map_first, bubble, bubble_fm, *_ = row
        # The distance-space algorithms never lose to Map-First...
        assert bubble <= map_first * 1.10
        assert bubble_fm <= map_first * 1.10
        # ...and BUBBLE ~ BUBBLE-FM in quality (paper: identical columns).
        ratio = bubble / max(bubble_fm, 1e-12)
        assert 1 / 3 <= ratio <= 3
