"""Regression gate for the CLARA sampled global phase.

Re-runs the exact-vs-sampled comparison (same Figure 4–6 workloads, seeds,
and node budgets as the committed ``BENCH_clara.json``) and asserts the
sampled phase's contract:

* **economy** — at equal ``k`` the sampled phase spends strictly fewer
  global-phase distance calls than the exact sequential CLARANS reference
  on every workload;
* **quality** — full-dataset distortion under the sampled medoids stays
  within 5% of the exact reference's (it may also beat it: five restarts
  over five subsamples escape local optima the single exact search falls
  into);
* **determinism** — the CLARA legs at ``n_jobs=2`` and ``n_jobs=1``
  produce bit-identical medoids and costs, so worker count is provably
  irrelevant to the result;
* **conservation** — the per-site ledger keeps partitioning each leg's
  total NCD exactly, sample re-booking included;
* **baseline** — global-phase NCD stays within tolerance of the committed
  ``BENCH_clara.json``, so search-cost drift fails CI instead of landing;
* **speedup** — on >= 4 usable CPUs, the parallel sampled phase beats the
  exact sequential one on wall-clock (a single-core box runs every other
  check and records its honest numbers).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks.harness import CLARA_OUTPUT, run_clara_benchmark, usable_cpus

#: Relative tolerance vs the committed baseline's global-phase NCD.
TOLERANCE = 0.02

#: Allowed relative excess of CLARA's distortion over exact CLARANS's.
DISTORTION_TOLERANCE = 0.05

#: The acceptance bar for parallel-sampled vs exact-sequential wall time.
MIN_SPEEDUP = 1.5


@pytest.fixture(scope="module")
def clara_doc(tmp_path_factory):
    out = tmp_path_factory.mktemp("clara") / "BENCH_clara.json"
    return run_clara_benchmark(scale="smoke", output=out, n_jobs=2, verbose=False)


@pytest.fixture(scope="module")
def baseline_doc():
    if not CLARA_OUTPUT.exists():
        pytest.skip("no committed BENCH_clara.json baseline")
    return json.loads(Path(CLARA_OUTPUT).read_text(encoding="utf-8"))


def test_sampled_ncd_below_exact(clara_doc):
    for record in clara_doc["records"]:
        name = record["workload"]["name"]
        assert record["ncd_global_sampled"] < record["ncd_global_exact"], (
            f"{name}: sampled global phase spent "
            f"{record['ncd_global_sampled']} calls vs exact "
            f"{record['ncd_global_exact']} — sampling must be cheaper at equal k"
        )


def test_distortion_within_tolerance_of_exact(clara_doc):
    for record in clara_doc["records"]:
        name = record["workload"]["name"]
        assert record["distortion_ratio"] <= 1.0 + DISTORTION_TOLERANCE, (
            f"{name}: CLARA distortion is {record['distortion_ratio']:.3f}x "
            f"the exact reference (bar: {1.0 + DISTORTION_TOLERANCE:.2f}x)"
        )


def test_sampled_phase_is_deterministic_across_n_jobs(clara_doc):
    for record in clara_doc["records"]:
        name = record["workload"]["name"]
        assert record["deterministic"], (
            f"{name}: CLARA at n_jobs=2 and n_jobs=1 disagree: "
            f"{record['clara']['medoid_indices']} vs "
            f"{record['clara_repeat']['medoid_indices']}"
        )
        assert record["clara"]["ncd_total"] == record["clara_repeat"]["ncd_total"]


def test_conservation_law_holds_per_leg(clara_doc):
    for record in clara_doc["records"]:
        for leg_name in ("exact", "clara", "clara_repeat"):
            leg = record[leg_name]
            assert sum(leg["ncd_by_site"].values()) == leg["ncd_total"], (
                f"{record['workload']['name']}/{leg_name}"
            )


def test_sample_accounting_sums_to_site(clara_doc):
    # The global-sample site must be exactly the sum of what the workers
    # reported home — re-booking may not invent or drop calls.
    for record in clara_doc["records"]:
        leg = record["clara"]
        booked = leg["ncd_by_site"].get("global-sample", 0)
        reported = sum(s["n_calls"] for s in leg["samples"])
        assert booked == reported, record["workload"]["name"]


def test_within_tolerance_of_committed_baseline(clara_doc, baseline_doc):
    assert baseline_doc["format"] == clara_doc["format"]
    fresh = {r["workload"]["name"]: r for r in clara_doc["records"]}
    for want in baseline_doc["records"]:
        name = want["workload"]["name"]
        got = fresh[name]
        assert got["workload"] == want["workload"]
        for column in ("ncd_global_exact", "ncd_global_sampled"):
            assert got[column] == pytest.approx(want[column], rel=TOLERANCE), (
                f"{name}: {column} drifted: {got[column]} vs committed "
                f"baseline {want[column]}"
            )


@pytest.mark.skipif(
    usable_cpus() < 4,
    reason="speedup gate needs >= 4 usable CPUs; this machine has fewer",
)
def test_parallel_sampled_beats_exact_wall(tmp_path):
    doc = run_clara_benchmark(
        scale="smoke", output=tmp_path / "BENCH_clara_4.json", n_jobs=4,
        verbose=False,
    )
    for record in doc["records"]:
        name = record["workload"]["name"]
        exact = record["exact"]["global_seconds"]
        sampled = record["clara"]["global_seconds"]
        assert sampled > 0
        assert exact / sampled >= MIN_SPEEDUP, (
            f"{name}: parallel sampled phase took {sampled:.2f}s vs exact "
            f"{exact:.2f}s ({exact / sampled:.2f}x, bar {MIN_SPEEDUP}x)"
        )
