"""Memory + numerical-stability regression gate for the slab CF* storage.

Re-runs the slab-arena memory benchmark (same Figure 4–6 workloads,
seeds, and tree parameters as the committed ``BENCH_memory.json``) and
asserts the refactor's contract:

* the contiguous slab layout costs at least 30% fewer bytes per leaf
  than the legacy two-lists-of-boxed-floats layout it replaced;
* the long-stream drift cell's compensated RowSum error stays under the
  bound the pre-slab scalar ``+=`` accumulation measurably violates —
  strictly better, not merely no worse;
* the storage change is NCD-neutral: totals match the committed memory
  baseline within tolerance and cross-check against the pruned legs of
  ``BENCH_pruning.json``, and the per-site ledger still satisfies the
  conservation law exactly;
* every slab-backed tree audits clean.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks.harness import (
    MEMORY_OUTPUT,
    PRUNING_OUTPUT,
    run_memory_benchmark,
)

#: Relative tolerance vs the committed baselines' NCD totals.
TOLERANCE = 0.02

#: Acceptance bar: slab bytes/leaf <= (1 - this) * legacy bytes/leaf.
MIN_BYTES_REDUCTION = 0.30

#: Exact-vs-incremental RowSum drift bound for the long-stream cell.
#: The compensated slab sits orders of magnitude below it; the replayed
#: naive accumulation exceeds it by more than 10x.
DRIFT_BOUND = 1e-13


@pytest.fixture(scope="module")
def memory_doc(tmp_path_factory):
    out = tmp_path_factory.mktemp("memory") / "BENCH_memory.json"
    return run_memory_benchmark(scale="smoke", output=out, verbose=False)


@pytest.fixture(scope="module")
def baseline_doc():
    if not MEMORY_OUTPUT.exists():
        pytest.skip("no committed BENCH_memory.json baseline")
    return json.loads(Path(MEMORY_OUTPUT).read_text(encoding="utf-8"))


def test_slab_meets_bytes_reduction_bar(memory_doc):
    for record in memory_doc["records"]:
        name = f"{record['workload']['name']}/{record['algorithm']}"
        slab = record["slab"]
        assert slab["rows_used"] > 0, name
        assert slab["bytes_per_leaf"] <= (1.0 - MIN_BYTES_REDUCTION) * slab[
            "legacy_bytes_per_leaf"
        ], f"{name}: slab layout saves < {MIN_BYTES_REDUCTION:.0%} per leaf"
        assert slab["bytes_reduction"] >= MIN_BYTES_REDUCTION, name


def test_drift_compensated_strictly_beats_naive(memory_doc):
    drift = memory_doc["drift"]
    assert drift["n_features"] == 1  # whole stream absorbed into one CF*
    assert drift["compensated_rel_err"] <= DRIFT_BOUND
    assert drift["naive_rel_err"] > 10 * DRIFT_BOUND
    assert drift["compensated_rel_err"] < drift["naive_rel_err"]
    # The compensation slot actually carries the sub-ulp mass (~n * 0.25).
    assert drift["compensation_term"] > 1e3


def test_slab_trees_audit_clean(memory_doc):
    for record in memory_doc["records"]:
        name = f"{record['workload']['name']}/{record['algorithm']}"
        assert record["audit"]["n_errors"] == 0, name


def test_conservation_law_still_pinned(memory_doc):
    for record in memory_doc["records"]:
        assert record["conservation"]
        assert sum(record["ncd_by_site"].values()) == record["ncd_total"]


def test_within_tolerance_of_committed_baseline(memory_doc, baseline_doc):
    assert baseline_doc["format"] == memory_doc["format"]
    baseline = {
        (r["workload"]["name"], r["algorithm"]): r for r in baseline_doc["records"]
    }
    for record in memory_doc["records"]:
        key = (record["workload"]["name"], record["algorithm"])
        assert key in baseline, f"workload {key} missing from committed baseline"
        want = baseline[key]
        assert record["ncd_total"] == pytest.approx(
            want["ncd_total"], rel=TOLERANCE
        ), f"{key} NCD drifted: {record['ncd_total']} vs {want['ncd_total']}"
        assert record["n_subclusters"] == want["n_subclusters"], key
    want_drift = baseline_doc["drift"]
    got_drift = memory_doc["drift"]
    assert got_drift["compensated_rel_err"] <= max(
        want_drift["compensated_rel_err"], DRIFT_BOUND
    ), "drift regressed vs committed baseline"


def test_ncd_cross_checks_against_pruning_baseline(memory_doc):
    """The storage refactor must be NCD-neutral: the same workloads under
    the same seeds and tree parameters spend the same distance calls as
    the pruned legs of the committed pruning baseline."""
    if not PRUNING_OUTPUT.exists():
        pytest.skip("no committed BENCH_pruning.json baseline")
    pruning = json.loads(Path(PRUNING_OUTPUT).read_text(encoding="utf-8"))
    pruned = {
        (r["workload"]["name"], r["algorithm"]): r["pruned"]["ncd_total"]
        for r in pruning["records"]
    }
    for record in memory_doc["records"]:
        key = (record["workload"]["name"], record["algorithm"])
        assert key in pruned, f"workload {key} missing from pruning baseline"
        assert record["ncd_total"] == pytest.approx(
            pruned[key], rel=TOLERANCE
        ), f"{key}: memory-bench NCD diverged from the pruning baseline"


def test_rss_recorded(memory_doc):
    assert memory_doc["peak_rss_kb"] > 0
    for record in memory_doc["records"]:
        assert record["peak_rss_kb"] > 0
