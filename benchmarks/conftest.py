"""Shared infrastructure for the reproduction benchmarks.

Each benchmark runs one experiment from :mod:`repro.experiments` and asserts
the paper's *shape* claims on its result. The session-scoped ``report``
fixture collects every :class:`~repro.experiments.results.TableResult`;
they are printed in the terminal summary (so they survive pytest's output
capture) and written to ``benchmarks/results.json`` for EXPERIMENTS.md.

Scale: defaults are laptop-sized; set ``REPRO_FULL_SCALE=1`` to run the
paper's original workload sizes. Set ``REPRO_SCALE=smoke|laptop|paper`` for
explicit control.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.results import TableResult, save_results

RESULTS_PATH = Path(__file__).parent / "results.json"

if "REPRO_SCALE" in os.environ:
    SCALE = os.environ["REPRO_SCALE"]
elif os.environ.get("REPRO_FULL_SCALE", "0") == "1":
    SCALE = "paper"
else:
    SCALE = "laptop"


class Report:
    """Collects experiment results across the benchmark session."""

    def __init__(self) -> None:
        self.results: dict[str, TableResult] = {}

    def record(self, result: TableResult) -> None:
        self.results[result.experiment] = result

    def render(self) -> str:
        return "\n\n".join(r.render() for r in self.results.values())

    def save(self) -> None:
        save_results(RESULTS_PATH, list(self.results.values()))


_report = Report()


@pytest.fixture(scope="session")
def report():
    return _report


@pytest.fixture(scope="session")
def scale():
    return SCALE


def pytest_terminal_summary(terminalreporter):
    if _report.results:
        terminalreporter.write_line("")
        terminalreporter.write_line(_report.render())
        _report.save()
        terminalreporter.write_line(f"\n[repro] results saved to {RESULTS_PATH}")
