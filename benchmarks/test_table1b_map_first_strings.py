"""Table 1 (continued) — Map-First on a genuinely non-Euclidean space.

Section 6.2 concludes "the quality of clustering thus obtained is not
good". On exactly-Euclidean synthetic vectors a careful FastMap is close to
an isometry, so a modern Map-First pipeline can tie BUBBLE there (see
EXPERIMENTS.md). The regime where the paper's conclusion is structural is a
distance space with no low-dimensional Euclidean embedding — the
edit-distance string workload benchmarked here (quality as ARI against the
known variant classes, at matched cluster counts).
"""

from __future__ import annotations

from repro.experiments import run_table1b_strings


def test_table1b_strings_quality(benchmark, report, scale):
    result = benchmark.pedantic(
        run_table1b_strings, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    report.record(result)

    by = result.row_map()
    ari_bubble = by["BUBBLE (distance space)"][1]
    ari_mf = by["Map-First (FastMap+BIRCH)"][1]
    # The paper's conclusion, in the space where it is structural.
    assert ari_bubble > ari_mf
    assert ari_bubble > 0.5
