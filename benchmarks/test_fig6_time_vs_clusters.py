"""Figure 6 — wall-clock time vs number of clusters (fixed N).

Paper shape: time grows (almost) linearly as the number of clusters in the
data rises, with the point count fixed.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_fig6_time_vs_clusters


def test_fig6_time_vs_clusters(benchmark, report, scale):
    result = benchmark.pedantic(
        run_fig6_time_vs_clusters, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    report.record(result)

    ks = np.asarray(result.column("#clusters"), dtype=float)
    tb = np.asarray(result.column("BUBBLE (s)"))
    # Sub-quadratic in k: time ratio bounded by ~2.5x the cluster ratio.
    assert tb[-1] / tb[0] < 2.5 * (ks[-1] / ks[0])
