"""Ablations A5-A7 — design choices beyond the paper's reported experiments.

* A5: FastMap vs Landmark MDS as BUBBLE-FM's image-space mapper (the paper
  notes the mapping algorithm is pluggable, Section 5.2.2);
* A6: the three second-phase labeling strategies (exact linear scan — the
  paper's method; CF*-tree routing; M-tree nearest-neighbour);
* A7: BUBBLE vs CLARANS, the related-work medoid method of Section 2.
"""

from __future__ import annotations

from repro.experiments import (
    run_ablation_clarans,
    run_ablation_labeling,
    run_ablation_mappers,
)


def test_a5_mapper_choice(benchmark, report, scale):
    result = benchmark.pedantic(
        run_ablation_mappers, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    report.record(result)
    values = result.column("distortion")
    # Both mappers must deliver comparable clustering quality.
    assert max(values) <= 1.5 * min(values)


def test_a6_labeling_strategies(benchmark, report, scale):
    result = benchmark.pedantic(
        run_ablation_labeling, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    report.record(result)
    by = result.row_map()
    ncd, agreement = 1, 3
    # M-tree is exact and cheaper than the linear scan at this cluster count.
    assert by["mtree"][agreement] == 1.0
    assert by["mtree"][ncd] < by["linear"][ncd]
    # CF*-tree routing is cheaper than the linear scan but approximate —
    # with hundreds of fine-grained sub-clusters the exact M-tree is the
    # better second-phase index.
    assert by["tree"][ncd] < by["linear"][ncd]
    assert by["tree"][agreement] > 0.5


def test_a7_bubble_vs_clarans(benchmark, report, scale):
    result = benchmark.pedantic(
        run_ablation_clarans, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    report.record(result)
    by = result.row_map()
    # Both reach good quality on separable data; CLARANS pays the
    # swap-evaluation cost the paper's related-work section criticizes.
    assert by["BUBBLE pipeline"][3] > 0.8
    assert by["CLARANS"][1] > by["BUBBLE pipeline"][1]


def test_a8_metric_indexes(benchmark, report, scale):
    from repro.experiments import run_ablation_indexes

    result = benchmark.pedantic(
        run_ablation_indexes, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    report.record(result)
    by = result.row_map()
    per_query, agreement = 3, 5
    # Both indexes are exact and beat the linear scan per query.
    for index in ("m-tree", "vp-tree"):
        assert by[index][agreement] == 1.0
        assert by[index][per_query] < by["linear scan"][per_query]
