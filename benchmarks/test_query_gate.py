"""Regression gate for the unified metric-index query layer.

Re-runs the per-backend query benchmark (same workloads, seeds, and tree
parameters as the committed ``BENCH_query.json``) and asserts the layer's
contract:

* **exactness** — every backend (m-tree, vp-tree, cf-tree) answers each
  k-NN and range query bit-identically to the brute scan, indices and
  distances both;
* **the headline perf claim** — the cf-tree backend serves k-NN queries
  over a built Figure-4 tree for at most half the brute-force NCD (the
  measured numbers sit near 90% saved; the gate is 50%);
* **cost ceiling** — no backend ever spends more counted calls per query
  than the linear scan it replaces (the per-query memo guarantees this
  structurally; the gate pins it empirically);
* **free repeats** — a repeated query is served entirely from the
  cross-query bound cache at zero NCD;
* **conservation** — the per-site call ledger still partitions the total
  exactly with ``query-build``/``query-knn``/``query-range`` traffic in
  the mix;
* **baseline** — per-query NCD stays within tolerance of the committed
  ``BENCH_query.json``, so pruning regressions fail CI instead of landing.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks.harness import QUERY_OUTPUT, run_query_benchmark

#: Relative tolerance vs the committed baseline's per-query NCD.
TOLERANCE = 0.02

#: The acceptance bar: fraction of the brute-scan cost the cf-tree backend
#: must save per k-NN query on the vector workloads.
MIN_SAVED = 0.5


@pytest.fixture(scope="module")
def query_doc(tmp_path_factory):
    out = tmp_path_factory.mktemp("query") / "BENCH_query.json"
    return run_query_benchmark(scale="smoke", output=out, verbose=False)


@pytest.fixture(scope="module")
def baseline_doc():
    if not QUERY_OUTPUT.exists():
        pytest.skip("no committed BENCH_query.json baseline")
    return json.loads(Path(QUERY_OUTPUT).read_text(encoding="utf-8"))


def _vector_records(doc):
    return [r for r in doc["records"] if r["kind"] == "vector"]


def test_all_backends_exactly_match_brute_force(query_doc):
    for record in query_doc["records"]:
        assert record["exact_equivalence"], (
            f"{record['workload']['name']}: some backend diverged from the "
            "brute-force answers"
        )


def test_cftree_saves_half_the_brute_cost_on_vector_workloads(query_doc):
    for record in _vector_records(query_doc):
        saved = record["backends"]["cftree"]["ncd_saved_knn"]
        assert saved >= MIN_SAVED, (
            f"{record['workload']['name']}: cf-tree k-NN saved only "
            f"{saved:.1%} of the brute scan (gate is {MIN_SAVED:.0%})"
        )


def test_no_backend_exceeds_brute_cost(query_doc):
    for record in query_doc["records"]:
        brute = record["backends"]["brute"]["knn_mean_ncd"]
        # Equality only on the vector cells: the string workload contains
        # duplicate records, so a duplicated query string is served from
        # the cross-query bound cache even by the brute backend.
        if record["kind"] == "vector":
            assert brute == record["n_indexed"], "brute scan must measure everything"
        assert brute <= record["n_indexed"]
        for name, backend in record["backends"].items():
            assert backend["knn_mean_ncd"] <= brute, (
                f"{record['workload']['name']}/{name} spent more than brute"
            )


def test_repeated_queries_are_free(query_doc):
    for record in query_doc["records"]:
        for name, backend in record["backends"].items():
            assert backend["repeat_query_calls"] == 0, (
                f"{record['workload']['name']}/{name}: a repeated query "
                f"cost {backend['repeat_query_calls']} calls"
            )


def test_ledger_conservation_with_query_traffic(query_doc):
    for record in query_doc["records"]:
        for name, backend in record["backends"].items():
            assert backend["conservation"], (
                f"{record['workload']['name']}/{name}: per-site ledger does "
                "not partition the total"
            )
            assert "query-knn" in backend["ncd_by_site"]
        # Index construction is charged to its own site on the tree backends.
        assert "query-build" in record["backends"]["mtree"]["ncd_by_site"]
        assert "query-build" in record["backends"]["cftree"]["ncd_by_site"]


def test_cftree_build_rides_on_cached_geometry(query_doc):
    # Adopting an already-built tree must cost orders of magnitude less
    # than building a dedicated index: only the non-leaf anchor gathers.
    for record in query_doc["records"]:
        cf = record["backends"]["cftree"]["build_calls"]
        mt = record["backends"]["mtree"]["build_calls"]
        assert cf < mt / 10, (
            f"{record['workload']['name']}: cf-tree adoption cost {cf} vs "
            f"m-tree build {mt}"
        )


def test_within_tolerance_of_committed_baseline(query_doc, baseline_doc):
    assert baseline_doc["format"] == query_doc["format"]
    assert baseline_doc["k"] == query_doc["k"]
    by_name = {r["workload"]["name"]: r for r in baseline_doc["records"]}
    for record in query_doc["records"]:
        want = by_name[record["workload"]["name"]]
        assert want["workload"] == record["workload"]
        for name in ("brute", "cftree"):
            got = record["backends"][name]["knn_mean_ncd"]
            ref = want["backends"][name]["knn_mean_ncd"]
            assert got == pytest.approx(ref, rel=TOLERANCE), (
                f"{record['workload']['name']}/{name}: per-query NCD drifted "
                f"({got} vs committed {ref})"
            )
