"""Ablations A1-A3 — sensitivity to the paper's tuning parameters.

Section 5.2.2: "results are not very sensitive to small deviations in the
values of the parameters: the representation number and the sample size. We
found that a value of 10 for the representation number works well ... an
appropriate value for the sample size ... 5 * BF works well in practice."
"""

from __future__ import annotations

from repro.experiments import (
    run_ablation_image_dim,
    run_ablation_representation,
    run_ablation_sample_size,
)


def test_a1_representation_number(benchmark, report, scale):
    result = benchmark.pedantic(
        run_ablation_representation, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    report.record(result)
    values = result.column("distortion")
    assert max(values) <= 1.5 * min(values)


def test_a2_sample_size(benchmark, report, scale):
    result = benchmark.pedantic(
        run_ablation_sample_size, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    report.record(result)
    values = result.column("distortion")
    assert max(values) <= 1.5 * min(values)


def test_a3_image_dimensionality(benchmark, report, scale):
    result = benchmark.pedantic(
        run_ablation_image_dim, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    report.record(result)
    values = result.column("distortion")
    # Quality stays usable across image dimensionalities; routing errors at
    # non-leaf nodes redirect objects but do not corrupt leaf clusters
    # (Section 5.2.1), so distortion moves only moderately.
    assert max(values) <= 2.0 * min(values)
