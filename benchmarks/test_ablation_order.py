"""Ablation A4 — order independence (paper footnote 5).

"The quality of the result from BIRCH was shown to be independent of the
input order. Since BUBBLE and BUBBLE-FM are instantiations of the BIRCH*
framework ... we do not present more results on order-independence here."

We present them: the same dataset scanned in several random orders must
yield final clusterings of near-identical distortion.
"""

from __future__ import annotations

from repro.experiments import run_ablation_order


def test_a4_order_independence(benchmark, report, scale):
    result = benchmark.pedantic(
        run_ablation_order, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    report.record(result)
    for row in result.rows:
        values = row[1:-1]
        assert max(values) <= 1.25 * min(values)
