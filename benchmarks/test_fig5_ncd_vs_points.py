"""Figure 5 — number of calls to the distance function (NCD) vs #points.

Paper shapes: (i) NCD grows linearly in N for both algorithms; (ii)
BUBBLE-FM's NCD sits below BUBBLE's, with the gap widening as N grows
(FastMap's refit overhead is bounded, its 2k-calls-per-level routing saving
is per-object).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_fig5_ncd_vs_points


def test_fig5_ncd_vs_points(benchmark, report, scale):
    result = benchmark.pedantic(
        run_fig5_ncd_vs_points, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    report.record(result)

    ns = np.asarray(result.column("#points"), dtype=float)
    ncd_b = np.asarray(result.column("BUBBLE NCD"), dtype=float)
    ncd_fm = np.asarray(result.column("BUBBLE-FM NCD"), dtype=float)

    if scale != "smoke":
        # BUBBLE-FM below BUBBLE at the sweep's larger sizes and in total;
        # single points are noisy at reduced scale (discrete tree
        # evolution), and at smoke scale there are too few insertions to
        # amortize the FastMap refits at all — the paper's claim is about
        # the large-N regime.
        assert ncd_fm[-1] < ncd_b[-1]
        assert ncd_fm.sum() < ncd_b.sum()
        # The absolute gap grows with N.
        gaps = ncd_b - ncd_fm
        assert gaps[-1] > gaps[0]
    # Roughly linear: calls per point stable within 3x across the sweep.
    per_point = ncd_b / ns
    assert per_point.max() < 3 * per_point.min()
