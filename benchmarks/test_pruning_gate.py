"""NCD regression gate for the pruned routing engine.

Re-runs the exhaustive-vs-pruned comparison (same workloads, seeds, and
tree parameters as the committed ``BENCH_pruning.json``) and asserts the
engine's contract:

* pruning never issues more distance calls than the exhaustive scan —
  in total and at every attributed site;
* the routing sites (``leaf-d0``, ``nonleaf-d2``) show a real saving
  (>= 25% on at least one Figure 4-6 workload);
* the per-site ledger still satisfies the conservation law;
* totals stay within tolerance of the committed baseline, so a change
  that silently erodes the pruning rate fails CI instead of landing.

The comparison is deterministic for a fixed scale (fresh metrics, fixed
seeds), so the tolerance only absorbs cross-platform float ordering.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks.harness import PRUNING_OUTPUT, run_pruning_benchmark

#: Relative tolerance vs the committed baseline's NCD totals.
TOLERANCE = 0.02

#: Acceptance bar: at least one workload must save this much at the
#: routing sites.
MIN_SITE_REDUCTION = 0.25


@pytest.fixture(scope="module")
def pruning_doc(tmp_path_factory):
    out = tmp_path_factory.mktemp("pruning") / "BENCH_pruning.json"
    return run_pruning_benchmark(scale="smoke", output=out, verbose=False)


@pytest.fixture(scope="module")
def baseline_doc():
    if not PRUNING_OUTPUT.exists():
        pytest.skip("no committed BENCH_pruning.json baseline")
    return json.loads(Path(PRUNING_OUTPUT).read_text(encoding="utf-8"))


def test_pruned_never_exceeds_exhaustive(pruning_doc):
    for record in pruning_doc["records"]:
        name = f"{record['workload']['name']}/{record['algorithm']}"
        exhaustive, pruned = record["exhaustive"], record["pruned"]
        assert pruned["ncd_total"] <= exhaustive["ncd_total"], name
        for site, after in pruned["ncd_by_site"].items():
            before = exhaustive["ncd_by_site"].get(site, 0)
            assert after <= before, f"{name}: site {site} regressed"


def test_routing_sites_meet_reduction_bar(pruning_doc):
    meets = [
        record
        for record in pruning_doc["records"]
        if record["ncd_reduction_by_site"].get("leaf-d0", 0.0) >= MIN_SITE_REDUCTION
        and record["ncd_reduction_by_site"].get("nonleaf-d2", 0.0)
        >= MIN_SITE_REDUCTION
    ]
    assert meets, "no workload reaches 25% reduction at both routing sites"


def test_trees_unchanged_by_pruning(pruning_doc):
    # Exactness witness at benchmark scale: same number of sub-clusters
    # out of both scans (the equivalence tests pin full tree identity).
    for record in pruning_doc["records"]:
        assert (
            record["pruned"]["n_subclusters"]
            == record["exhaustive"]["n_subclusters"]
        ), f"{record['workload']['name']}/{record['algorithm']}"


def test_conservation_law_still_pinned(pruning_doc):
    for record in pruning_doc["records"]:
        for scan in (record["exhaustive"], record["pruned"]):
            assert sum(scan["ncd_by_site"].values()) == scan["ncd_total"]


def test_within_tolerance_of_committed_baseline(pruning_doc, baseline_doc):
    assert baseline_doc["format"] == pruning_doc["format"]
    baseline = {
        (r["workload"]["name"], r["algorithm"]): r for r in baseline_doc["records"]
    }
    for record in pruning_doc["records"]:
        key = (record["workload"]["name"], record["algorithm"])
        assert key in baseline, f"workload {key} missing from committed baseline"
        for side in ("exhaustive", "pruned"):
            got = record[side]["ncd_total"]
            want = baseline[key][side]["ncd_total"]
            assert got == pytest.approx(want, rel=TOLERANCE), (
                f"{key} {side} NCD drifted: {got} vs baseline {want}"
            )


def test_pruning_counters_consistent(pruning_doc):
    for record in pruning_doc["records"]:
        stats = record["pruned"]["pruning"]
        assert (
            stats["candidates_evaluated"] + stats["candidates_pruned"]
            == stats["candidates_total"]
        )
        assert stats["queries"] > 0
        assert stats["block_hints_wasted"] <= stats["block_hints"]
