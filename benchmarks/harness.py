"""Benchmark-regression harness: traced Fig 4/5/6 + Table 1 runs.

Runs the paper's scaling experiments (Figures 4–6) and the distortion
comparison (Table 1) through a fresh :class:`repro.observability.Tracer`
each, then writes ``BENCH_birchstar.json`` — one record per experiment with

* ``ncd_total`` and ``ncd_by_site`` — where the distance calls went
  (disjoint attribution; the sites sum to the total);
* ``spans`` — inclusive per-phase wall time and NCD;
* ``wall_seconds`` — harness-measured wall time of the whole experiment;
* ``quality`` — the experiment's own result table (columns + rows), i.e.
  the numbers the paper reports.

Committed alongside the code, the file is the regression baseline: a change
that silently doubles ``fastmap-refit`` calls or shifts cost between sites
shows up as a diff. Regenerate with::

    PYTHONPATH=src python benchmarks/harness.py --scale smoke

Scale ``smoke`` keeps the whole run under a minute; ``laptop``/``paper``
follow :mod:`repro.experiments.config`. Sites named in the output are
documented in ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.core.preclusterer import BUBBLE, BUBBLEFM
from repro.datasets.vector import make_cell_dataset
from repro.experiments.config import paper_max_nodes, resolve_scale
from repro.experiments.figures import (
    run_fig4_time_vs_points,
    run_fig5_ncd_vs_points,
    run_fig6_time_vs_clusters,
)
from repro.experiments.table1 import run_table1
from repro.metrics import EuclideanDistance
from repro.observability import Tracer, format_summary
from repro.utils import peak_rss_kb

__all__ = [
    "run_harness",
    "run_pruning_benchmark",
    "run_parallel_benchmark",
    "run_clara_benchmark",
    "run_memory_benchmark",
    "run_query_benchmark",
    "main",
]

DEFAULT_OUTPUT = Path(__file__).parent / "BENCH_birchstar.json"
PRUNING_OUTPUT = Path(__file__).parent / "BENCH_pruning.json"
PARALLEL_OUTPUT = Path(__file__).parent / "BENCH_parallel.json"
CLARA_OUTPUT = Path(__file__).parent / "BENCH_clara.json"
MEMORY_OUTPUT = Path(__file__).parent / "BENCH_memory.json"
QUERY_OUTPUT = Path(__file__).parent / "BENCH_query.json"

#: Small points in the adversarial long-stream drift cell.
DRIFT_STREAM_POINTS = 50_000

#: Subsamples per CLARA leg (the classic recommendation).
CLARA_SAMPLES = 5

#: Logical shard count of the parallel benchmark. Pinned independently of
#: ``n_jobs`` so the merged tree — and hence the committed NCD baseline —
#: is identical no matter how many workers execute the build.
PARALLEL_SHARDS = 4

#: Tree parameters shared with the figure experiments (Section 6.1).
_TREE_PARAMS = dict(branching_factor=15, sample_size=75, representation_number=10)

#: The experiments the harness drives: name -> callable(scale, tracer).
EXPERIMENTS: dict[str, Callable[..., Any]] = {
    "fig4_time_vs_points": run_fig4_time_vs_points,
    "fig5_ncd_vs_points": run_fig5_ncd_vs_points,
    "fig6_time_vs_clusters": run_fig6_time_vs_clusters,
    "table1_distortion": run_table1,
}


def _run_one(name: str, runner: Callable[..., Any], scale: str) -> dict[str, Any]:
    """Run one experiment under a fresh tracer; return its benchmark record."""
    tracer = Tracer()
    start = time.perf_counter()
    # The activation makes every metric the experiment creates internally
    # charge this tracer's ledger; the tracer= argument additionally threads
    # phase spans through the drivers.
    with tracer:
        result = runner(scale=scale, tracer=tracer)
    wall = time.perf_counter() - start
    tracer.close()
    summary = tracer.summary()
    return {
        "experiment": name,
        "scale": scale,
        "wall_seconds": round(wall, 3),
        "ncd_total": summary["ncd_total"],
        "ncd_by_site": summary["ncd_by_site"],
        "spans": {
            span: {"count": int(agg["count"]), "ncd": int(agg["ncd"])}
            for span, agg in sorted(summary["spans"].items())
        },
        "quality": {
            "description": result.description,
            "columns": result.columns,
            "rows": result.rows,
        },
        "peak_rss_kb": peak_rss_kb(),
    }


def run_harness(
    scale: str = "smoke",
    output: str | Path = DEFAULT_OUTPUT,
    only: list[str] | None = None,
    verbose: bool = True,
) -> dict[str, Any]:
    """Run the benchmark suite; write and return the ``BENCH`` document.

    Per-experiment wall times and span seconds vary run to run, so the
    committed baseline is compared on the NCD columns (deterministic for a
    fixed scale and the experiments' built-in seeds), not on timings.
    """
    resolve_scale(scale)  # fail fast on an unknown scale name
    selected = {
        name: runner
        for name, runner in EXPERIMENTS.items()
        if only is None or name in only
    }
    if not selected:
        raise SystemExit(f"no experiment matches {only!r}; have {list(EXPERIMENTS)}")
    records = []
    for name, runner in selected.items():
        if verbose:
            print(f"[harness] running {name} at scale {scale!r} ...", flush=True)
        record = _run_one(name, runner, scale)
        records.append(record)
        if verbose:
            print(format_summary(
                {"ncd_total": record["ncd_total"], "ncd_by_site": record["ncd_by_site"]}
            ))
    doc = {
        "format": "repro-bench-v1",
        "scale": scale,
        "experiments": records,
    }
    output = Path(output)
    output.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n", encoding="utf-8")
    if verbose:
        print(f"[harness] wrote {output}")
    return doc


def _pruning_workloads(scale: str) -> list[dict[str, Any]]:
    """Figure 4–6 style cell-grid workloads at the requested scale."""
    cfg = resolve_scale(scale)
    return [
        {"name": "fig4_cells", "dim": 20, "n_clusters": 50,
         "n_points": max(cfg.sweep_points), "seed": 50},
        {"name": "fig5_cells", "dim": 20, "n_clusters": 50,
         "n_points": max(cfg.sweep_points), "seed": 60},
        {"name": "fig6_cells", "dim": 20, "n_clusters": max(cfg.sweep_clusters),
         "n_points": cfg.fig6_points, "seed": 70},
    ]


def _pruning_scan(
    algorithm: str, objs: Any, max_nodes: int, prune: bool
) -> dict[str, Any]:
    """One traced scan; returns NCD totals, per-site NCD, and pruning stats."""
    metric = EuclideanDistance()
    tracer = Tracer()
    with tracer:
        if algorithm == "bubble":
            model = BUBBLE(
                metric, max_nodes=max_nodes, seed=0, tracer=tracer,
                prune=prune, **_TREE_PARAMS,
            )
        else:
            model = BUBBLEFM(
                metric, max_nodes=max_nodes, image_dim=20, seed=0, tracer=tracer,
                prune=prune, **_TREE_PARAMS,
            )
        model.fit(objs)
    tracer.close()
    summary = tracer.summary()
    return {
        "ncd_total": summary["ncd_total"],
        "ncd_by_site": summary["ncd_by_site"],
        "n_subclusters": model.n_subclusters_,
        "pruning": model.tree_.policy.pruning_stats.as_dict(),
        "peak_rss_kb": peak_rss_kb(),
    }


def run_pruning_benchmark(
    scale: str = "smoke",
    output: str | Path = PRUNING_OUTPUT,
    verbose: bool = True,
) -> dict[str, Any]:
    """Exhaustive-vs-pruned NCD comparison; writes ``BENCH_pruning.json``.

    Each Figure 4–6 workload is scanned twice per algorithm — once with the
    pruned routing engine disabled, once enabled — with everything else
    (data, seeds, tree parameters) identical. Because pruning is exact, the
    two scans build the same tree; only NCD changes. The committed file is
    the regression baseline the NCD gate test compares against.

    ``pruning.maintenance_evals`` in each record counts the raw
    (NCD-neutral) evaluations spent maintaining pivot geometry — reported
    so the accounting policy stays honest.
    """
    records = []
    for workload in _pruning_workloads(scale):
        ds = make_cell_dataset(
            dim=workload["dim"], n_clusters=workload["n_clusters"],
            n_points=workload["n_points"], seed=workload["seed"],
        )
        objs = list(ds.points)
        max_nodes = paper_max_nodes(workload["n_clusters"])
        for algorithm in ("bubble", "bubble-fm"):
            if verbose:
                print(f"[harness] pruning benchmark: {workload['name']} / "
                      f"{algorithm} at scale {scale!r} ...", flush=True)
            exhaustive = _pruning_scan(algorithm, objs, max_nodes, prune=False)
            pruned = _pruning_scan(algorithm, objs, max_nodes, prune=True)
            site_reduction = {}
            for site, before in exhaustive["ncd_by_site"].items():
                after = pruned["ncd_by_site"].get(site, 0)
                site_reduction[site] = round(1.0 - after / before, 4) if before else 0.0
            total_before = exhaustive["ncd_total"]
            record = {
                "workload": workload,
                "algorithm": algorithm,
                "max_nodes": max_nodes,
                "exhaustive": exhaustive,
                "pruned": pruned,
                "ncd_reduction_total": (
                    round(1.0 - pruned["ncd_total"] / total_before, 4)
                    if total_before else 0.0
                ),
                "ncd_reduction_by_site": site_reduction,
            }
            records.append(record)
            if verbose:
                print(f"[harness]   NCD {total_before} -> {pruned['ncd_total']} "
                      f"({record['ncd_reduction_total']:.1%} saved)")
    doc = {
        "format": "repro-bench-pruning-v1",
        "scale": scale,
        "records": records,
    }
    output = Path(output)
    output.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n", encoding="utf-8")
    if verbose:
        print(f"[harness] wrote {output}")
    return doc


def _tree_fingerprint(tree: Any) -> str:
    """Order-sensitive digest of structure + leaf clustroids: two trees
    share a fingerprint iff they are byte-identical."""
    sig: list[Any] = []

    def walk(node: Any) -> None:
        if node.is_leaf:
            sig.append(
                tuple(repr(np.asarray(f.clustroid).tolist()) for f in node.entries)
            )
        else:
            sig.append(len(node.entries))
            for entry in node.entries:
                walk(entry.child)

    walk(tree.root)
    return hashlib.sha256(repr(sig).encode("utf-8")).hexdigest()


def usable_cpus() -> int:
    """CPUs this process may actually schedule on (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _parallel_run(
    objects: list, ds: Any, n_clusters: int, max_nodes: int, n_jobs: int
) -> dict[str, Any]:
    """One traced end-to-end pipeline run; returns the benchmark record."""
    from repro.analysis.audit import audit_tree
    from repro.evaluation.metrics import clustroid_quality, distortion
    from repro.pipelines.cluster import cluster_dataset

    metric = EuclideanDistance()
    tracer = Tracer()
    start = time.perf_counter()
    with tracer:
        result = cluster_dataset(
            objects,
            metric,
            n_clusters=n_clusters,
            max_nodes=max_nodes,
            seed=0,
            assign=True,
            tracer=tracer,
            n_jobs=n_jobs,
            n_shards=PARALLEL_SHARDS if n_jobs > 1 else None,
        )
    wall = time.perf_counter() - start
    tracer.close()
    summary = tracer.summary()
    audit = audit_tree(result.model.tree_, raise_on_error=False)
    return {
        "n_jobs": n_jobs,
        "n_shards": PARALLEL_SHARDS if n_jobs > 1 else 1,
        "wall_seconds": round(wall, 3),
        "scan_seconds": round(result.scan_seconds, 3),
        "ncd_total": summary["ncd_total"],
        "ncd_by_site": summary["ncd_by_site"],
        "spans": {
            span: {"count": int(agg["count"]), "ncd": int(agg["ncd"])}
            for span, agg in sorted(summary["spans"].items())
        },
        "n_subclusters": len(result.subclusters),
        "tree_fingerprint": _tree_fingerprint(result.model.tree_),
        "quality": {
            "clustroid_quality": round(
                clustroid_quality(ds.centers, result.centers), 6
            ),
            "distortion": round(distortion(ds.points, result.labels), 6),
        },
        "audit": {
            "n_errors": len(audit.errors),
            "n_warnings": len(audit.warnings),
        },
        "shards": getattr(result.model, "shard_summaries_", []),
        "peak_rss_kb": peak_rss_kb(),
    }


def run_parallel_benchmark(
    scale: str = "smoke",
    output: str | Path = PARALLEL_OUTPUT,
    n_jobs: int = 4,
    verbose: bool = True,
) -> dict[str, Any]:
    """Sequential-vs-sharded build comparison; writes ``BENCH_parallel.json``.

    The Figure 4 cell workload is clustered three times: once sequentially,
    once with the sharded build on ``n_jobs`` workers (``PARALLEL_SHARDS``
    logical shards), and once more in parallel to witness determinism (the
    merged-tree fingerprints must match). The record keeps the evidence the
    gate test checks — speedup, determinism, audit cleanliness, per-site
    NCD conservation, and Table 2-style quality for both builds — plus the
    honest ``cpu_count``/``usable_cpus`` of the machine that produced it
    (speedup on a single-core box is expected to be < 1 and is only gated
    where ≥ 4 CPUs are usable).
    """
    cfg = resolve_scale(scale)
    workload = {
        "name": "fig4_cells",
        "dim": 20,
        "n_clusters": 50,
        "n_points": max(cfg.sweep_points),
        "seed": 50,
    }
    ds = make_cell_dataset(
        dim=workload["dim"],
        n_clusters=workload["n_clusters"],
        n_points=workload["n_points"],
        seed=workload["seed"],
    )
    objects = list(ds.points)
    max_nodes = paper_max_nodes(workload["n_clusters"])

    legs = [("sequential", 1), ("parallel", n_jobs), ("parallel_repeat", n_jobs)]
    records: dict[str, dict[str, Any]] = {}
    for name, jobs in legs:
        if verbose:
            print(f"[harness] parallel benchmark: {name} (n_jobs={jobs}) "
                  f"at scale {scale!r} ...", flush=True)
        records[name] = _parallel_run(
            objects, ds, workload["n_clusters"], max_nodes, jobs
        )
    seq, par, repeat = (records[name] for name, _ in legs)
    conservation = sum(par["ncd_by_site"].values()) == par["ncd_total"]
    doc = {
        "format": "repro-bench-parallel-v1",
        "scale": scale,
        "workload": workload,
        "max_nodes": max_nodes,
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable_cpus(),
        "sequential": seq,
        "parallel": par,
        "parallel_repeat": repeat,
        "speedup_scan": round(seq["scan_seconds"] / par["scan_seconds"], 3)
        if par["scan_seconds"] else 0.0,
        "speedup_total": round(seq["wall_seconds"] / par["wall_seconds"], 3)
        if par["wall_seconds"] else 0.0,
        "deterministic": par["tree_fingerprint"] == repeat["tree_fingerprint"],
        "audit_clean": par["audit"]["n_errors"] == 0,
        "conservation": conservation,
    }
    output = Path(output)
    output.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n", encoding="utf-8")
    if verbose:
        print(f"[harness]   scan speedup {doc['speedup_scan']}x on "
              f"{doc['usable_cpus']} usable CPUs; deterministic="
              f"{doc['deterministic']} audit_clean={doc['audit_clean']}")
        print(f"[harness] wrote {output}")
    return doc


def _clara_workloads(scale: str) -> list[dict[str, Any]]:
    """Figure 4–6 cells with generous node budgets.

    The sampled global phase only pays off when the scan leaves *many*
    leaf clustroids (its per-swap cost is O(sample) instead of O(N_sub));
    the paper-style tiny budgets of the pruning benchmark consolidate to
    ~k clustroids, where every "subsample" is the whole set. The budgets
    here are tuned to land each smoke-scale scan in the several-hundred
    clustroid regime the sampled phase targets.
    """
    cfg = resolve_scale(scale)
    return [
        {"name": "fig4_cells", "dim": 20, "n_clusters": 50,
         "n_points": max(cfg.sweep_points), "seed": 50, "max_nodes": 100},
        {"name": "fig5_cells", "dim": 20, "n_clusters": 50,
         "n_points": max(cfg.sweep_points), "seed": 60, "max_nodes": 110},
        {"name": "fig6_cells", "dim": 20, "n_clusters": max(cfg.sweep_clusters),
         "n_points": cfg.fig6_points, "seed": 70, "max_nodes": 100},
    ]


#: Tracer sites charged by each kind of global phase.
_EXACT_SITES = ("global-phase",)
_SAMPLED_SITES = ("global-sample", "global-assign")


def _clara_run(
    objects: list, ds: Any, workload: dict[str, Any], method: str, n_jobs: int
) -> dict[str, Any]:
    """One traced scan + global phase + labeling; returns the leg record.

    The scan always runs sequentially so every leg owns a byte-identical
    tree; only the sampled searches fan out (``model.n_jobs`` is set after
    the fit, before the global phase).
    """
    from repro.evaluation.metrics import clustroid_quality, distortion
    from repro.pipelines.labeling import nearest_assignment

    k = workload["n_clusters"]
    metric = EuclideanDistance()
    tracer = Tracer()
    start = time.perf_counter()
    with tracer:
        model = BUBBLE(
            metric, max_nodes=workload["max_nodes"], seed=0, tracer=tracer,
            **_TREE_PARAMS,
        )
        model.fit(objects)
        scan_seconds = time.perf_counter() - start
        model.n_jobs = n_jobs
        global_start = time.perf_counter()
        search = model.global_phase(
            k, method=method, global_samples=CLARA_SAMPLES, seed=0
        )
        global_seconds = time.perf_counter() - global_start
        with tracer.span("redistribute"):
            labels = nearest_assignment(metric, objects, search.medoids_)
    wall = time.perf_counter() - start
    tracer.close()
    summary = tracer.summary()
    sites = _SAMPLED_SITES if method == "clara" else _EXACT_SITES
    return {
        "method": method,
        "n_jobs": n_jobs,
        "wall_seconds": round(wall, 3),
        "scan_seconds": round(scan_seconds, 3),
        "global_seconds": round(global_seconds, 3),
        "n_subclusters": len(model.subclusters_),
        "ncd_total": summary["ncd_total"],
        "ncd_by_site": summary["ncd_by_site"],
        "ncd_global": sum(summary["ncd_by_site"].get(s, 0) for s in sites),
        "medoid_indices": list(search.medoid_indices_),
        "search_cost": round(float(search.cost_), 6),
        "samples": model.global_phase_samples_,
        "quality": {
            "clustroid_quality": round(
                clustroid_quality(ds.centers, search.medoids_), 6
            ),
            "distortion": round(distortion(ds.points, labels), 6),
        },
        "conservation": sum(summary["ncd_by_site"].values()) == summary["ncd_total"],
        "peak_rss_kb": peak_rss_kb(),
    }


def run_clara_benchmark(
    scale: str = "smoke",
    output: str | Path = CLARA_OUTPUT,
    n_jobs: int = 2,
    verbose: bool = True,
) -> dict[str, Any]:
    """Exact-vs-sampled global phase comparison; writes ``BENCH_clara.json``.

    Each Figure 4–6 workload runs three legs over byte-identical trees:
    the exact sequential CLARANS reference, CLARA on ``n_jobs`` workers,
    and CLARA again on one worker — the sampled result must be bit-
    identical across the two worker counts, spend fewer global-phase
    distance calls than the exact search at equal ``k``, and stay within
    5% of its distortion. The committed file is the baseline the
    ``test_clara_gate.py`` CI gate compares against; wall-clock columns
    are recorded for the ≥ 4-CPU speedup leg but never gated elsewhere.
    """
    records = []
    for workload in _clara_workloads(scale):
        ds = make_cell_dataset(
            dim=workload["dim"], n_clusters=workload["n_clusters"],
            n_points=workload["n_points"], seed=workload["seed"],
        )
        objects = list(ds.points)
        legs = {}
        for leg_name, method, jobs in (
            ("exact", "clarans", 1),
            ("clara", "clara", n_jobs),
            ("clara_repeat", "clara", 1),
        ):
            if verbose:
                print(f"[harness] clara benchmark: {workload['name']} / "
                      f"{leg_name} (n_jobs={jobs}) at scale {scale!r} ...",
                      flush=True)
            legs[leg_name] = _clara_run(objects, ds, workload, method, jobs)
        exact, clara, repeat = legs["exact"], legs["clara"], legs["clara_repeat"]
        record = {
            "workload": workload,
            "exact": exact,
            "clara": clara,
            "clara_repeat": repeat,
            "ncd_global_exact": exact["ncd_global"],
            "ncd_global_sampled": clara["ncd_global"],
            "ncd_saving": (
                round(1.0 - clara["ncd_global"] / exact["ncd_global"], 4)
                if exact["ncd_global"] else 0.0
            ),
            "distortion_ratio": (
                round(
                    clara["quality"]["distortion"] / exact["quality"]["distortion"],
                    6,
                )
                if exact["quality"]["distortion"] else 1.0
            ),
            "deterministic": (
                clara["medoid_indices"] == repeat["medoid_indices"]
                and clara["search_cost"] == repeat["search_cost"]
            ),
            "conservation": all(
                leg["conservation"] for leg in (exact, clara, repeat)
            ),
        }
        records.append(record)
        if verbose:
            print(f"[harness]   global NCD {record['ncd_global_exact']} -> "
                  f"{record['ncd_global_sampled']} "
                  f"({record['ncd_saving']:.1%} saved); "
                  f"distortion ratio {record['distortion_ratio']:.3f}; "
                  f"deterministic={record['deterministic']}")
    doc = {
        "format": "repro-bench-clara-v1",
        "scale": scale,
        "global_samples": CLARA_SAMPLES,
        "n_jobs": n_jobs,
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable_cpus(),
        "records": records,
    }
    output = Path(output)
    output.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n", encoding="utf-8")
    if verbose:
        print(f"[harness] wrote {output}")
    return doc


def _memory_scan(algorithm: str, objs: Any, max_nodes: int) -> dict[str, Any]:
    """One traced scan recording slab-arena memory accounting + audit."""
    from repro.analysis.audit import audit_tree

    metric = EuclideanDistance()
    tracer = Tracer()
    start = time.perf_counter()
    with tracer:
        if algorithm == "bubble":
            model = BUBBLE(
                metric, max_nodes=max_nodes, seed=0, tracer=tracer, **_TREE_PARAMS
            )
        else:
            model = BUBBLEFM(
                metric, max_nodes=max_nodes, image_dim=20, seed=0, tracer=tracer,
                **_TREE_PARAMS,
            )
        model.fit(objs)
    wall = time.perf_counter() - start
    tracer.close()
    summary = tracer.summary()
    audit = audit_tree(model.tree_, raise_on_error=False)
    return {
        "wall_seconds": round(wall, 3),
        "ncd_total": summary["ncd_total"],
        "ncd_by_site": summary["ncd_by_site"],
        "conservation": sum(summary["ncd_by_site"].values()) == summary["ncd_total"],
        "n_subclusters": model.n_subclusters_,
        "slab": model.tree_.policy.arena.snapshot(),
        "audit": {
            "n_errors": len(audit.errors),
            "n_warnings": len(audit.warnings),
        },
        "peak_rss_kb": peak_rss_kb(),
    }


def _drift_cell(n_small: int = DRIFT_STREAM_POINTS) -> dict[str, Any]:
    """Long-stream RowSum drift measurement on an adversarial magnitude mix.

    Two tight seed points become the permanent representatives, a third
    point at offset 1e8 hoists their RowSums to ~1e16, and ``n_small``
    points at radius 0.5 follow — each contributing a squared distance
    (~0.25) far below the ulp of the running sum (2.0 at 1e16). The cell
    reports the relative error of the slab's compensated RowSum against a
    ``math.fsum`` reference, next to a replay of the pre-slab scalar
    ``+=`` accumulation over the identical update stream, which loses
    every small addend.
    """
    import math

    from repro.core.bubble import BubblePolicy
    from repro.core.cftree import CFTree

    rng = np.random.default_rng(0)
    rep_a = np.array([0.0, 0.0])
    rep_b = np.array([1.0, 0.0])
    huge = np.array([1e8, 0.0])
    theta = rng.uniform(0.0, 2.0 * np.pi, size=n_small)
    small = list(0.5 * np.stack([np.cos(theta), np.sin(theta)], axis=1))

    metric = EuclideanDistance()
    policy = BubblePolicy(metric, representation_number=2, sample_size=10, seed=0)
    tree = CFTree(policy, threshold=1e9, seed=0)
    start = time.perf_counter()
    for obj in [rep_a, rep_b, huge, *small]:
        tree.insert(obj)
    wall = time.perf_counter() - start

    feature = tree.leaf_features()[0]
    rest = [rep_b, huge, *small]
    sq = np.asarray(metric.one_to_many(rep_a, rest), dtype=np.float64) ** 2
    exact = math.fsum(sq.tolist())
    stored = feature.rowsums[0]
    naive = 0.0
    for v in sq:
        naive += float(v)
    return {
        "n_points": 3 + n_small,
        "n_features": len(tree.leaf_features()),
        "wall_seconds": round(wall, 3),
        "exact_rowsum": exact,
        "compensated_rel_err": abs(stored - exact) / exact,
        "naive_rel_err": abs(naive - exact) / exact,
        "compensation_term": float(
            policy.arena.compensations[feature._row, 0]
        ),
    }


def run_memory_benchmark(
    scale: str = "smoke",
    output: str | Path = MEMORY_OUTPUT,
    verbose: bool = True,
) -> dict[str, Any]:
    """Slab-arena memory + RowSum drift evidence; writes ``BENCH_memory.json``.

    Each Figure 4–6 workload is scanned once per algorithm with the same
    seeds and tree parameters as the pruning benchmark (so ``ncd_total``
    cross-checks against the pruned legs of ``BENCH_pruning.json``), and
    the record keeps the slab arena's memory accounting — bytes per leaf
    in the contiguous layout vs the legacy two-lists-of-boxed-floats
    layout it replaced — plus audit cleanliness, the NCD conservation
    check, and ``peak_rss_kb``. A separate long-stream drift cell measures
    compensated-vs-naive RowSum error on an adversarial magnitude spread.
    The committed file is the baseline ``test_memory_gate.py`` enforces.
    """
    records = []
    for workload in _pruning_workloads(scale):
        ds = make_cell_dataset(
            dim=workload["dim"], n_clusters=workload["n_clusters"],
            n_points=workload["n_points"], seed=workload["seed"],
        )
        objs = list(ds.points)
        max_nodes = paper_max_nodes(workload["n_clusters"])
        for algorithm in ("bubble", "bubble-fm"):
            if verbose:
                print(f"[harness] memory benchmark: {workload['name']} / "
                      f"{algorithm} at scale {scale!r} ...", flush=True)
            scan = _memory_scan(algorithm, objs, max_nodes)
            record = {
                "workload": workload,
                "algorithm": algorithm,
                "max_nodes": max_nodes,
                **scan,
            }
            records.append(record)
            if verbose:
                slab = scan["slab"]
                print(f"[harness]   {slab['rows_used']} leaves, "
                      f"{slab['bytes_per_leaf']} B/leaf "
                      f"(legacy {slab['legacy_bytes_per_leaf']}, "
                      f"-{slab['bytes_reduction']:.1%}); "
                      f"audit errors {scan['audit']['n_errors']}")
    if verbose:
        print(f"[harness] memory benchmark: long-stream drift cell "
              f"({DRIFT_STREAM_POINTS} absorbs) ...", flush=True)
    drift = _drift_cell()
    if verbose:
        print(f"[harness]   compensated rel err {drift['compensated_rel_err']:.3e} "
              f"vs naive {drift['naive_rel_err']:.3e}")
    doc = {
        "format": "repro-bench-memory-v1",
        "scale": scale,
        "records": records,
        "drift": drift,
        "peak_rss_kb": peak_rss_kb(),
    }
    output = Path(output)
    output.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n", encoding="utf-8")
    if verbose:
        print(f"[harness] wrote {output}")
    return doc


#: Index backends the query benchmark compares (brute is the reference).
QUERY_BACKENDS = ("brute", "mtree", "vptree", "cftree")

#: Neighbours per k-NN query.
QUERY_K = 3

#: Queries per workload (distinct points, so the cross-query bound cache
#: cannot trivially serve them — repeats are measured separately).
QUERY_COUNT = 25


def _query_vector_workloads(scale: str) -> list[dict[str, Any]]:
    return _pruning_workloads(scale)


def _query_string_workload(scale: str) -> dict[str, Any]:
    cfg = resolve_scale(scale)
    n_strings = min(400, max(cfg.sweep_points) // 4)
    return {"name": "authority_strings", "n_classes": max(20, n_strings // 8),
            "n_strings": n_strings, "seed": 80}


def _query_scan(
    metric_factory: Callable[[], Any],
    model: Any,
    queries: list[Any],
    radius: float,
) -> dict[str, Any]:
    """Query every backend over one fitted model's clustroids.

    Each backend gets a fresh metric and its own bound cache, so the
    recorded NCD is exactly what that backend spent. Returns per-backend
    records plus the cross-backend exact-equivalence verdict.
    """
    from repro.index import CFTreeIndex, make_index

    indexed = [f.clustroid for f in model.tree_.leaf_features()]
    backends: dict[str, dict[str, Any]] = {}
    answers: dict[str, list[Any]] = {}
    for backend in QUERY_BACKENDS:
        metric = metric_factory()
        tracer = Tracer()
        with tracer:
            if backend == "cftree":
                index = CFTreeIndex.from_tree(model.tree_, metric=metric)
            else:
                index = make_index(backend, metric)
                index.build(indexed)
            keyed = []
            knn_calls = 0
            range_calls = 0
            for q in queries:
                knn = index.nearest(q, k=QUERY_K)
                knn_calls += knn.n_calls
                # Incremental: the range query reuses the distances its
                # k-NN twin just paid for through the bound cache.
                rng_result = index.within(q, radius)
                range_calls += rng_result.n_calls
                keyed.append((
                    [(n.index, round(n.distance, 9)) for n in knn],
                    [(n.index, round(n.distance, 9)) for n in rng_result],
                ))
            # A repeated query must be served by the bound cache for free.
            repeat_calls = index.nearest(queries[0], k=QUERY_K).n_calls
        tracer.close()
        summary = tracer.summary()
        stats = index.stats
        answers[backend] = keyed
        backends[backend] = {
            "build_calls": stats.build_calls,
            "knn_mean_ncd": round(knn_calls / len(queries), 3),
            "range_mean_ncd": round(range_calls / len(queries), 3),
            "repeat_query_calls": repeat_calls,
            "pruned_fraction": round(
                stats.candidates_pruned / stats.candidates_total, 4
            ) if stats.candidates_total else 0.0,
            "bound_cache": index.bound_cache.as_dict(),
            "ncd_total": summary["ncd_total"],
            "ncd_by_site": summary["ncd_by_site"],
            "conservation": (
                sum(summary["ncd_by_site"].values()) == summary["ncd_total"]
            ),
        }
    reference = answers["brute"]
    exact = all(answers[b] == reference for b in QUERY_BACKENDS)
    brute_knn = backends["brute"]["knn_mean_ncd"]
    for backend in QUERY_BACKENDS:
        saved = 1.0 - backends[backend]["knn_mean_ncd"] / brute_knn if brute_knn else 0.0
        backends[backend]["ncd_saved_knn"] = round(saved, 4)
    return {
        "n_indexed": len(indexed),
        "radius": round(radius, 6),
        "backends": backends,
        "exact_equivalence": exact,
    }


def run_query_benchmark(
    scale: str = "smoke",
    output: str | Path = QUERY_OUTPUT,
    verbose: bool = True,
) -> dict[str, Any]:
    """Per-backend query NCD vs brute force; writes ``BENCH_query.json``.

    Each Figure 4–6 vector workload (and the authority-strings workload)
    is preclustered once per backend-metric with identical parameters;
    every index backend then answers the same ``QUERY_COUNT`` k-NN and
    range queries over the leaf clustroids. Recorded per backend: build
    NCD, mean per-query NCD (the headline number — the cf-tree backend
    must save >= 50% of the brute-scan cost at leaf level, enforced by
    ``test_query_gate.py``), pruning fraction, bound-cache counters, the
    repeated-query cost (must be 0 — served entirely from the cross-query
    cache), per-site ledger totals, and the conservation verdict. The
    ``exact_equivalence`` flag asserts all backends returned bit-identical
    ``(index, distance)`` answers.
    """
    from repro.datasets import make_authority_dataset
    from repro.metrics import EditDistance

    records = []
    workloads: list[tuple[dict[str, Any], Callable[[], Any], str]] = [
        (w, EuclideanDistance, "vector") for w in _query_vector_workloads(scale)
    ]
    workloads.append((_query_string_workload(scale), EditDistance, "string"))
    for workload, metric_factory, kind in workloads:
        if verbose:
            print(f"[harness] query benchmark: {workload['name']} at scale "
                  f"{scale!r} ...", flush=True)
        rng = np.random.default_rng(workload["seed"])
        if kind == "vector":
            ds = make_cell_dataset(
                dim=workload["dim"], n_clusters=workload["n_clusters"],
                n_points=workload["n_points"], seed=workload["seed"],
            )
            objs = list(ds.points)
        else:
            ds = make_authority_dataset(
                n_classes=workload["n_classes"], n_strings=workload["n_strings"],
                seed=workload["seed"],
            )
            objs = list(ds.strings)
        # Index-serving configuration: no memory cap and zero threshold, so
        # the clustroid hierarchy stays fine-grained (the paper's max_nodes
        # compression would leave a handful of coarse leaves — the right
        # shape for preclustering, the wrong one for serving queries).
        model = BUBBLE(
            metric_factory(), threshold=0.0, max_nodes=None, seed=0,
            **_TREE_PARAMS,
        ).fit(objs)
        queries = [objs[i] for i in rng.choice(len(objs), QUERY_COUNT, replace=False)]
        probe = metric_factory().one_to_many(
            queries[0], [f.clustroid for f in model.tree_.leaf_features()]
        )
        radius = float(np.median(probe))
        record = {"workload": workload, "kind": kind,
                  **_query_scan(metric_factory, model, queries, radius)}
        records.append(record)
        if verbose:
            for backend in QUERY_BACKENDS:
                b = record["backends"][backend]
                print(f"[harness]   {backend:>6}: knn {b['knn_mean_ncd']:.1f} "
                      f"calls/query ({b['ncd_saved_knn']:.1%} saved), "
                      f"build {b['build_calls']}, repeat {b['repeat_query_calls']}")
            assert record["exact_equivalence"], "backends diverged from brute force"
    doc = {
        "format": "repro-bench-query-v1",
        "scale": scale,
        "k": QUERY_K,
        "n_queries": QUERY_COUNT,
        "records": records,
    }
    output = Path(output)
    output.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n", encoding="utf-8")
    if verbose:
        print(f"[harness] wrote {output}")
    return doc


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="harness", description="traced benchmark runs -> BENCH_birchstar.json"
    )
    parser.add_argument("--scale", default="smoke", help="smoke|laptop|paper")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT))
    parser.add_argument(
        "--only", nargs="*", default=None, metavar="NAME",
        help=f"subset of experiments to run (choices: {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--pruning", action="store_true",
        help="run the exhaustive-vs-pruned NCD comparison instead "
             "(writes BENCH_pruning.json)",
    )
    parser.add_argument("--pruning-output", default=str(PRUNING_OUTPUT))
    parser.add_argument(
        "--parallel", action="store_true",
        help="run the sequential-vs-sharded build comparison instead "
             "(writes BENCH_parallel.json)",
    )
    parser.add_argument(
        "--jobs", type=int, default=4, metavar="N",
        help="worker processes for the parallel benchmark legs (default 4)",
    )
    parser.add_argument("--parallel-output", default=str(PARALLEL_OUTPUT))
    parser.add_argument(
        "--clara", action="store_true",
        help="run the exact-vs-sampled global phase comparison instead "
             "(writes BENCH_clara.json)",
    )
    parser.add_argument(
        "--clara-jobs", type=int, default=2, metavar="N",
        help="worker processes for the parallel CLARA leg (default 2)",
    )
    parser.add_argument("--clara-output", default=str(CLARA_OUTPUT))
    parser.add_argument(
        "--memory", action="store_true",
        help="run the slab-arena memory + RowSum drift benchmark instead "
             "(writes BENCH_memory.json)",
    )
    parser.add_argument("--memory-output", default=str(MEMORY_OUTPUT))
    parser.add_argument(
        "--query", action="store_true",
        help="run the per-backend query NCD comparison instead "
             "(writes BENCH_query.json)",
    )
    parser.add_argument("--query-output", default=str(QUERY_OUTPUT))
    args = parser.parse_args(argv)
    if args.pruning:
        run_pruning_benchmark(scale=args.scale, output=args.pruning_output)
    elif args.parallel:
        run_parallel_benchmark(
            scale=args.scale, output=args.parallel_output, n_jobs=args.jobs
        )
    elif args.clara:
        run_clara_benchmark(
            scale=args.scale, output=args.clara_output, n_jobs=args.clara_jobs
        )
    elif args.memory:
        run_memory_benchmark(scale=args.scale, output=args.memory_output)
    elif args.query:
        run_query_benchmark(scale=args.scale, output=args.query_output)
    else:
        run_harness(scale=args.scale, output=args.output, only=args.only)
    return 0


if __name__ == "__main__":
    sys.exit(main())
