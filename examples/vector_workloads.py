"""The paper's synthetic vector workloads, end to end.

Regenerates miniature versions of the evaluation scenarios of Section 6:

* DS2 (sine wave): run BUBBLE, BUBBLE-FM and the Map-First baseline and
  print how well the discovered centers trace the wave;
* DS20d.50c: the scalability dataset — compare NCD and wall time of
  BUBBLE vs BUBBLE-FM at matched quality.

Run:  python examples/vector_workloads.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import BUBBLE, BUBBLEFM
from repro.datasets import make_cell_dataset, make_ds2
from repro.evaluation import clustroid_quality, distortion
from repro.metrics import EuclideanDistance
from repro.pipelines import cluster_dataset, map_first_cluster


def sine_wave_demo() -> None:
    print("=" * 64)
    print("DS2: 100 clusters along a sine wave (Figures 1-3)")
    print("=" * 64)
    ds = make_ds2(n_points=8000, n_clusters=100, seed=0)

    for algorithm in ("bubble", "bubble-fm"):
        res = cluster_dataset(
            ds.as_objects(),
            EuclideanDistance(),
            n_clusters=100,
            algorithm=algorithm,
            image_dim=2,
            max_nodes=18,
            assign=False,
            seed=1,
        )
        centers = np.vstack(res.centers)
        cq = clustroid_quality(ds.centers, centers)
        print(f"{algorithm:10s}: {len(res.subclusters):4d} subclusters -> "
              f"{res.n_clusters} clusters, CQ vs wave centers = {cq:.3f}")

    mf = map_first_cluster(
        ds.as_objects(), EuclideanDistance(), n_clusters=100, image_dim=2,
        max_nodes=18, seed=1,
    )
    cq = clustroid_quality(ds.centers, mf.image_centers)
    print(f"{'map-first':10s}: CQ vs wave centers = {cq:.3f} "
          f"(the paper's Figure 3 shows this baseline wandering off the wave)")


def scalability_demo() -> None:
    print()
    print("=" * 64)
    print("DS20d.50c: the scalability workload (Figures 4-5)")
    print("=" * 64)
    ds = make_cell_dataset(dim=20, n_clusters=50, n_points=8000, seed=2)
    objs = ds.as_objects()

    for name, cls, kw in (
        ("BUBBLE", BUBBLE, {}),
        ("BUBBLE-FM", BUBBLEFM, {"image_dim": 20}),
    ):
        metric = EuclideanDistance()
        start = time.perf_counter()
        model = cls(metric, branching_factor=15, sample_size=75,
                    max_nodes=12, seed=3, **kw).fit(objs)
        elapsed = time.perf_counter() - start
        labels = model.assign(objs)
        d = distortion(ds.points, labels)
        print(f"{name:10s}: {elapsed:5.1f}s  NCD={metric.n_calls:>9d}  "
              f"subclusters={model.n_subclusters_:3d}  distortion={d:9.1f}")
    print("\nBUBBLE-FM trades a FastMap refit at every node split for 2k-call")
    print("routing afterwards - fewer total calls to d once trees stabilize.")


if __name__ == "__main__":
    sine_wave_demo()
    scalability_demo()
