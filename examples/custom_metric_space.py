"""Clustering a user-defined distance space.

BUBBLE's contract with the data is a single function ``d(a, b)`` satisfying
the metric axioms — objects can be anything. This example clusters Python
sets (customer "shopping baskets") under the Jaccard distance, and shows how
to plug in a completely custom metric with ``FunctionDistance``.

Run:  python examples/custom_metric_space.py
"""

from __future__ import annotations

import numpy as np

from repro import BUBBLE, FunctionDistance
from repro.evaluation import adjusted_rand_index
from repro.hac import AgglomerativeClusterer
from repro.metrics import JaccardDistance


def make_baskets(seed: int = 0):
    """Three shopper archetypes, each drawing mostly from its own catalog."""
    rng = np.random.default_rng(seed)
    catalogs = [
        [f"grocery:{i}" for i in range(30)],
        [f"electronics:{i}" for i in range(30)],
        [f"garden:{i}" for i in range(30)],
    ]
    baskets, labels = [], []
    for archetype, catalog in enumerate(catalogs):
        for _ in range(80):
            k = int(rng.integers(4, 10))
            own = rng.choice(catalog, size=k, replace=False).tolist()
            # A little cross-catalog noise.
            other = catalogs[(archetype + 1) % 3]
            noise = rng.choice(other, size=1).tolist() if rng.random() < 0.3 else []
            baskets.append(frozenset(own + noise))
            labels.append(archetype)
    order = rng.permutation(len(baskets))
    return [baskets[i] for i in order], np.asarray(labels)[order]


def main() -> None:
    baskets, truth = make_baskets()
    print(f"{len(baskets)} baskets, e.g. {sorted(baskets[0])[:4]} ...")

    # --- built-in set metric ----------------------------------------------
    metric = JaccardDistance()
    model = BUBBLE(
        metric,
        threshold=0.8,   # baskets within Jaccard distance 0.8 may merge
        max_nodes=10,
        seed=0,
    ).fit(baskets)
    print(f"\nBUBBLE found {model.n_subclusters_} sub-clusters "
          f"({metric.n_calls} Jaccard evaluations)")

    # Global phase: merge sub-clusters down to the 3 archetypes.
    clustroids = model.clustroids_
    weights = [s.n for s in model.subclusters_]
    hac = AgglomerativeClusterer(n_clusters=3, linkage="average").fit(
        objects=clustroids, metric=metric, weights=weights
    )
    # Label every basket by its sub-cluster, then map to the merged cluster.
    sub_labels = model.assign(baskets)
    final = hac.labels_[sub_labels]
    print(f"after hierarchical merge: ARI vs archetypes = "
          f"{adjusted_rand_index(truth, final):.3f}")

    # --- fully custom metric ----------------------------------------------
    # Any callable works; here a weighted symmetric-difference distance.
    def basket_distance(a, b) -> float:
        return float(len(a ^ b)) / (1.0 + min(len(a), len(b)))

    custom = FunctionDistance(basket_distance, name="sym-diff")
    model2 = BUBBLE(custom, threshold=2.0, max_nodes=10, seed=0).fit(baskets)
    print(f"\ncustom metric '{custom.name}': {model2.n_subclusters_} "
          f"sub-clusters ({custom.n_calls} evaluations)")
    print("\nAny symmetric, triangle-inequality-respecting function works —")
    print("BUBBLE never looks inside the objects.")


if __name__ == "__main__":
    main()
