"""Render the paper's figures in the terminal.

Regenerates Figures 1-3 (DS2 cluster centers for BUBBLE, BUBBLE-FM and the
Map-First/BIRCH baseline) as ASCII scatter plots, and Figure 5 (NCD vs
number of points) as an ASCII line plot — miniature but shape-faithful
versions of the paper's plots.

Run:  python examples/paper_figures.py
"""

from __future__ import annotations

import numpy as np

from repro import BUBBLE, BUBBLEFM
from repro.datasets import make_cell_dataset, make_ds2
from repro.evaluation.plots import ascii_lines, ascii_scatter
from repro.metrics import EuclideanDistance
from repro.pipelines import cluster_dataset, map_first_cluster


def figures_1_to_3() -> None:
    ds = make_ds2(n_points=6000, n_clusters=100, seed=40)

    def bubble_centers(algorithm):
        res = cluster_dataset(
            ds.as_objects(), EuclideanDistance(), n_clusters=100,
            algorithm=algorithm, image_dim=2, max_nodes=18, assign=False, seed=4,
        )
        return np.vstack(res.centers)

    for name, centers in (
        ("Figure 1: DS2 clustroids found by BUBBLE", bubble_centers("bubble")),
        ("Figure 2: DS2 clustroids found by BUBBLE-FM", bubble_centers("bubble-fm")),
        (
            "Figure 3: DS2 centroids found by BIRCH on FastMap images (Map-First)",
            map_first_cluster(
                ds.as_objects(), EuclideanDistance(), n_clusters=100,
                image_dim=2, max_nodes=18, seed=4,
            ).image_centers,
        ),
    ):
        print(ascii_scatter({"found centers": centers}, title=name, height=14))
        print()


def figure_5() -> None:
    point_counts = [2000, 4000, 6000, 8000]
    ncd_bubble, ncd_fm = [], []
    for n in point_counts:
        ds = make_cell_dataset(dim=20, n_clusters=50, n_points=n, seed=60)
        objs = ds.as_objects()
        m1, m2 = EuclideanDistance(), EuclideanDistance()
        BUBBLE(m1, max_nodes=12, seed=6).fit(objs)
        BUBBLEFM(m2, max_nodes=12, image_dim=20, seed=6).fit(objs)
        ncd_bubble.append(m1.n_calls)
        ncd_fm.append(m2.n_calls)
    print(
        ascii_lines(
            point_counts,
            {"BUBBLE NCD": ncd_bubble, "BUBBLE-FM NCD": ncd_fm},
            title="Figure 5: number of calls to d vs number of points (DS20d.50c)",
        )
    )


if __name__ == "__main__":
    figures_1_to_3()
    figure_5()
