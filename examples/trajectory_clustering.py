"""Clustering trajectories under the discrete Fréchet distance.

The paper's thesis is that clustering should work in *any* metric space.
This example pushes past strings: the objects are 2-d trajectories
(commute-like paths), the metric is the discrete Fréchet distance (an
O(mn) dynamic program — expensive, exactly BUBBLE-FM's target regime), and
we compare three of this library's clusterers on the same space:

* BUBBLE-FM (single-scan pre-clustering),
* metric DBSCAN over the M-tree (density view of the same data),
* plus silhouette scoring, which needs only distances.

Run:  python examples/trajectory_clustering.py
"""

from __future__ import annotations

import numpy as np

from repro import BUBBLEFM, MetricDBSCAN
from repro.evaluation import misplaced_count, silhouette_score
from repro.metrics import CachedDistance, DiscreteFrechetDistance


def make_commutes(seed: int = 0):
    """Three families of routes between landmarks, with GPS-like noise."""
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 1.0, 15)

    def highway():  # straight shot east
        base = np.column_stack([t * 10, np.zeros_like(t)])
        return base + 0.15 * rng.normal(size=base.shape)

    def scenic():  # an arc over the hill
        base = np.column_stack([t * 10, 5 * np.sin(np.pi * t)])
        return base + 0.15 * rng.normal(size=base.shape)

    def detour():  # dogleg through downtown
        x = t * 10
        y = np.where(t < 0.5, t * 8, (1 - t) * 8)
        return np.column_stack([x, y]) + 0.15 * rng.normal(size=(len(t), 2))

    routes, labels = [], []
    for family, make in enumerate((highway, scenic, detour)):
        for _ in range(25):
            routes.append(make())
            labels.append(family)
    order = rng.permutation(len(routes))
    return [routes[i] for i in order], np.asarray(labels)[order]


def main() -> None:
    routes, truth = make_commutes()
    print(f"{len(routes)} trajectories of {routes[0].shape[0]} points each, "
          f"3 route families")

    metric = CachedDistance(
        DiscreteFrechetDistance(), key=lambda c: np.asarray(c).tobytes()
    )

    # --- BUBBLE-FM -----------------------------------------------------
    model = BUBBLEFM(
        metric,
        image_dim=2,       # routes live on a low-dimensional shape manifold
        threshold=1.2,     # routes within Fréchet distance 1.2 merge
        seed=0,
    ).fit(routes)
    labels = model.assign(routes)
    mis = misplaced_count(truth, labels)
    sil = silhouette_score(metric, routes, labels, sample_size=None)
    print(f"\nBUBBLE-FM: {model.n_subclusters_} sub-clusters, "
          f"{mis} misplaced, silhouette {sil:.2f}, "
          f"{metric.n_calls} Fréchet evaluations")
    for sub in sorted(model.subclusters_, key=lambda s: -s.n)[:3]:
        start = np.asarray(sub.clustroid)[0]
        end = np.asarray(sub.clustroid)[-1]
        print(f"  cluster of {sub.n}: clustroid runs "
              f"({start[0]:.1f},{start[1]:.1f}) -> ({end[0]:.1f},{end[1]:.1f}), "
              f"radius {sub.radius:.2f}")

    # --- metric DBSCAN ---------------------------------------------------
    db_metric = CachedDistance(
        DiscreteFrechetDistance(), key=lambda c: np.asarray(c).tobytes()
    )
    db = MetricDBSCAN(eps=1.0, min_pts=4, metric=db_metric).fit(routes)
    print(f"\nmetric DBSCAN: {db.n_clusters_} clusters, {db.n_noise_} noise "
          f"({db_metric.n_calls} Fréchet evaluations)")
    print(f"  misplaced vs truth: {misplaced_count(truth, np.maximum(db.labels_, 0))}")

    print("\nSame library, no vector operations anywhere: the trajectories "
          "were only ever\ncompared through d(curve_a, curve_b).")


if __name__ == "__main__":
    main()
