"""Streaming ingestion and persisting the condensed result.

BIRCH* algorithms read objects sequentially and keep only O(M) state, so
they handle data that never fits in memory. This example:

1. writes a dataset to disk and clusters it *from the stream* (the process
   never holds all points at once);
2. continues clustering as two more "days" of data arrive (partial_fit);
3. persists the condensed sub-cluster summaries to JSON;
4. reloads them in a fresh session and labels new records against them.

Run:  python examples/streaming_and_persistence.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import BUBBLE
from repro.datasets import make_cell_dataset, stream_vectors, write_vector_file
from repro.metrics import EuclideanDistance
from repro.persistence import load_subclusters, save_subclusters
from repro.pipelines import nearest_assignment


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-demo-"))

    # --- 1. day 0: cluster straight off the disk stream -------------------
    day0 = make_cell_dataset(dim=5, n_clusters=6, n_points=4000, seed=0)
    day0_file = workdir / "day0.csv"
    write_vector_file(day0_file, day0.as_objects())

    metric = EuclideanDistance()
    model = BUBBLE(metric, max_nodes=12, seed=0)
    model.partial_fit(stream_vectors(day0_file))   # generator: single scan
    print(f"day 0: {model.tree_.n_objects} objects -> "
          f"{model.n_subclusters_} sub-clusters "
          f"(tree nodes: {model.tree_.n_nodes}, NCD: {metric.n_calls})")

    # --- 2. more batches arrive ------------------------------------------
    for day in (1, 2):
        batch = make_cell_dataset(dim=5, n_clusters=6, n_points=2000, seed=day)
        model.partial_fit(batch.as_objects())
        print(f"day {day}: total {model.tree_.n_objects} objects -> "
              f"{model.n_subclusters_} sub-clusters "
              f"(threshold has grown to {model.tree_.threshold:.3f})")
    model.finalize()

    # --- 3. persist the condensed representation --------------------------
    snapshot = workdir / "subclusters.json"
    save_subclusters(
        snapshot,
        model.subclusters_,
        metadata={"metric": "euclidean", "source": "days 0-2"},
    )
    print(f"\nsaved {model.n_subclusters_} sub-cluster summaries "
          f"({snapshot.stat().st_size} bytes) to {snapshot}")

    # --- 4. a fresh session loads and uses them ---------------------------
    loaded, meta = load_subclusters(snapshot)
    print(f"reloaded {len(loaded)} summaries (metadata: {meta})")
    fresh_metric = EuclideanDistance()
    queries = make_cell_dataset(dim=5, n_clusters=6, n_points=10, seed=9)
    labels = nearest_assignment(
        fresh_metric, queries.as_objects(), [s.clustroid for s in loaded]
    )
    print(f"labeled {len(labels)} new records using only the snapshot "
          f"({fresh_metric.n_calls} distance calls)")
    print("\nThe full dataset was never resident in memory: the tree held "
          f"at most {model.tree_.max_nodes} nodes.")


if __name__ == "__main__":
    main()
