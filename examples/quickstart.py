"""Quickstart: cluster objects in an arbitrary metric space with BUBBLE.

This example shows the minimum viable workflow:

1. define (or pick) a distance function;
2. pre-cluster the data in a single scan with BUBBLE;
3. inspect the sub-clusters (clustroid, population, radius);
4. optionally run the full pipeline (pre-cluster -> hierarchical global
   phase -> labeling) with ``cluster_dataset``.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import BUBBLE, cluster_dataset
from repro.evaluation import adjusted_rand_index
from repro.metrics import EuclideanDistance


def main() -> None:
    rng = np.random.default_rng(0)

    # --- a toy dataset: four Gaussian blobs in the plane -----------------
    centers = np.array([[0.0, 0.0], [12.0, 0.0], [0.0, 12.0], [12.0, 12.0]])
    points, truth = [], []
    for label, c in enumerate(centers):
        pts = c + 0.8 * rng.normal(size=(500, 2))
        points.extend(pts)
        truth.extend([label] * len(pts))
    order = rng.permutation(len(points))
    points = [points[i] for i in order]
    truth = np.asarray(truth)[order]

    # --- 1. the distance function ----------------------------------------
    # BUBBLE treats objects as opaque: the ONLY operation it performs is
    # metric.distance(a, b). Every call is counted (the paper's NCD).
    metric = EuclideanDistance()

    # --- 2. one-scan pre-clustering --------------------------------------
    model = BUBBLE(
        metric,
        branching_factor=15,   # B: max entries per CF*-tree node
        sample_size=75,        # SS: sample objects per non-leaf node
        representation_number=10,  # 2p: representatives per cluster
        max_nodes=10,          # M: memory budget; tree rebuilds beyond it
        seed=42,
    ).fit(points)

    print(f"scanned {model.tree_.n_objects} objects in a single pass")
    print(f"tree: {model.tree_}")
    print(f"distance calls (NCD): {model.n_distance_calls_}")

    # --- 3. inspect the sub-clusters -------------------------------------
    print("\nlargest sub-clusters:")
    for sub in sorted(model.subclusters_, key=lambda s: -s.n)[:6]:
        clustroid = np.round(np.asarray(sub.clustroid), 2)
        print(f"  n={sub.n:5d}  clustroid={clustroid}  radius={sub.radius:.2f}")

    # --- 4. the full pipeline: pre-cluster -> HAC -> label ----------------
    result = cluster_dataset(
        points,
        EuclideanDistance(),
        n_clusters=4,
        algorithm="bubble",
        max_nodes=10,
        seed=42,
    )
    ari = adjusted_rand_index(truth, result.labels)
    print(f"\nfull pipeline: {result.n_clusters} clusters, "
          f"ARI vs ground truth = {ari:.3f}")
    print(f"total wall time: {result.total_seconds:.2f}s, "
          f"NCD: {result.n_distance_calls}")


if __name__ == "__main__":
    main()
