"""Data cleaning: building an authority file from variant author strings.

Reproduces the workflow of Section 7 of the paper at demo scale: a corpus of
bibliographic author strings (with typos, dropped characters, transposed
words and initialed given names) is grouped into variant classes so a
canonical form can be assigned to each class. BUBBLE-FM does the heavy
lifting with the edit distance; the RED comparator shows the classical
leader-clustering alternative.

Run:  python examples/strings_data_cleaning.py
"""

from __future__ import annotations

import time

from repro import BUBBLEFM
from repro.datasets import make_authority_dataset
from repro.evaluation import misplaced_count
from repro.metrics import CachedDistance, EditDistance
from repro.red import REDClusterer


def main() -> None:
    # A synthetic stand-in for the paper's proprietary RDS dataset: 80
    # authors, 800 records, heavy duplication, corruption classes matching
    # the paper's description (omissions / additions / transpositions).
    ds = make_authority_dataset(n_classes=80, n_strings=800, seed=7)
    print(f"dataset: {ds.n_strings} records, {ds.n_classes} true authors, "
          f"{ds.n_distinct_variants} distinct variants")
    print("example variants of one author:")
    for v in ds.variants[0][:5]:
        print(f"  {v!r}")

    # --- BUBBLE-FM with the edit distance ---------------------------------
    # CachedDistance dedupes exact repeats (real records repeat constantly);
    # n_calls counts true O(m*n) edit-distance evaluations only.
    metric = CachedDistance(EditDistance())
    start = time.perf_counter()
    model = BUBBLEFM(
        metric,
        branching_factor=15,
        sample_size=75,
        image_dim=3,      # image space for cheap non-leaf routing
        threshold=2.0,    # strings within 2 edits of a clustroid merge
        seed=1,
    ).fit(ds.strings)
    labels = model.assign(ds.strings, via="tree")
    elapsed = time.perf_counter() - start

    mis = misplaced_count(ds.labels, labels)
    print(f"\nBUBBLE-FM: {model.n_subclusters_} clusters in {elapsed:.2f}s, "
          f"{metric.n_calls} edit-distance evaluations "
          f"({metric.n_hits} cache hits), {mis} misplaced records")

    print("\nsample clusters (clustroid <- members):")
    shown = 0
    for sub in sorted(model.subclusters_, key=lambda s: -s.n):
        if len(sub.representatives) > 2 and shown < 4:
            members = ", ".join(repr(r) for r in sub.representatives[:4])
            print(f"  {sub.clustroid!r}  <-  {members}")
            shown += 1

    # --- the RED baseline --------------------------------------------------
    start = time.perf_counter()
    red = REDClusterer(threshold=0.25).fit(ds.strings)
    red_elapsed = time.perf_counter() - start
    red_mis = misplaced_count(ds.labels, red.labels_)
    print(f"\nRED:       {red.n_clusters_} clusters in {red_elapsed:.2f}s, "
          f"{red.metric.n_calls} distance evaluations, {red_mis} misplaced")

    print("\nNote how BUBBLE-FM's call count stays in the tens of calls per "
          "distinct record\n(tree routing + FastMap) while RED compares "
          "every new record against every\ncluster representative.")


if __name__ == "__main__":
    main()
